#include "spmm/spmm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/thread_pool.hpp"

namespace igcn {

CsrMatrix
CsrMatrix::fromGraph(const CsrGraph &g)
{
    CsrMatrix m;
    m.numRows = g.numNodes();
    m.numCols = g.numNodes();
    m.rowPtr = g.rows();
    m.colIdx = g.cols();
    m.values.assign(m.colIdx.size(), 1.0f);
    return m;
}

DenseMatrix
CsrMatrix::toDense() const
{
    DenseMatrix d(numRows, numCols);
    for (NodeId r = 0; r < numRows; ++r)
        for (EdgeId e = rowPtr[r]; e < rowPtr[r + 1]; ++e)
            d.at(r, colIdx[e]) += values[e];
    return d;
}

const CscIndex &
CsrMatrix::csc() const
{
    return cscCache.get([this] {
        CscIndex idx;
        transposeCsrIndex(numCols, rowPtr, colIdx, idx.colPtr,
                          idx.rowOf, &values, &idx.valOf);
        return idx;
    });
}

namespace {

void
checkShapes(const CsrMatrix &a, const DenseMatrix &b)
{
    if (a.numCols != b.rows())
        throw std::invalid_argument("SpMM shape mismatch");
}

/**
 * Race-free row gather C += M * B over a compressed row index
 * (ptr, idx, val) — either a matrix's own CSR arrays or its CSC
 * adjunct (which gathers the transpose). Output rows are sharded
 * across workers, so every row of C is written by exactly one worker
 * with no speculation buffers; channels are tiled so each
 * irregularly-fetched B row contributes one kChannelTile-float slice
 * per pass. Per output element the entries accumulate in index order
 * regardless of the split or tiling, so the result is bit-identical
 * at any thread count.
 */
void
gatherTiled(const std::vector<EdgeId> &ptr,
            const std::vector<NodeId> &idx,
            const std::vector<float> &val, const DenseMatrix &b,
            DenseMatrix &c, const uint8_t *skip_row = nullptr)
{
    const size_t channels = b.cols();
    constexpr size_t kChannelTile = 64;
    // Attribute the region to the calling dataflow's label when one
    // is active; only bare gather calls show up as "gather_tiled".
    KernelRegion region(currentKernelLabel() ? currentKernelLabel()
                                             : "gather_tiled");
    globalPool().parallelFor(0, c.rows(),
                             [&](int, size_t r0, size_t r1) {
        for (size_t ch0 = 0; ch0 < channels; ch0 += kChannelTile) {
            const size_t ch1 = std::min(channels, ch0 + kChannelTile);
            for (size_t i = r0; i < r1; ++i) {
                // The skip never reorders anything: each unskipped
                // row accumulates exactly as without a mask (rows
                // are single-worker), so masking preserves the
                // kernel's bit-identity contract row by row.
                if (skip_row && skip_row[i])
                    continue;
                float *crow = c.row(i);
                for (EdgeId e = ptr[i]; e < ptr[i + 1]; ++e) {
                    const float v = val[e];
                    const float *brow = b.row(idx[e]);
                    for (size_t ch = ch0; ch < ch1; ++ch)
                        crow[ch] += v * brow[ch];
                }
            }
        }
    }, /*min_per_worker=*/16);
}

} // namespace

DenseMatrix
spmmPullRowWise(const CsrMatrix &a, const DenseMatrix &b,
                SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);
    KernelRegion region("spmm_pull_row_wise");

    // Rows of C are independent: shard the row range across workers
    // (gatherTiled), channel-tiled so far more distinct B rows stay
    // resident in L1/L2 across the edges of a row block. Per output
    // element the edge accumulation order is unchanged, so the result
    // is bit-identical at any thread count.
    gatherTiled(a.rowPtr, a.colIdx, a.values, b, c);

    // Counters model the dataflow's access profile (Table 1), which
    // software tiling does not change: each non-zero of A is one A
    // read, pulls one full B row irregularly, and every output
    // element is written streamed once.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz();
        cnt.bIrregularReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cStreamedWrites =
            static_cast<uint64_t>(a.numRows) * channels;
        *counters += cnt;
    }
    return c;
}

void
spmmPullRowWiseMasked(const CsrMatrix &a, const DenseMatrix &b,
                      std::span<const uint8_t> skip_row,
                      DenseMatrix &c, SpmmCounters *counters)
{
    checkShapes(a, b);
    if (skip_row.size() != a.numRows)
        throw std::invalid_argument(
            "spmmPullRowWiseMasked: mask size != rows");
    if (c.rows() != a.numRows || c.cols() != b.cols())
        throw std::invalid_argument(
            "spmmPullRowWiseMasked: output shape mismatch");
    KernelRegion region("spmm_pull_row_wise");

    gatherTiled(a.rowPtr, a.colIdx, a.values, b, c, skip_row.data());

    // Counters account only the work actually done: skipped rows
    // pull nothing and write nothing.
    if (counters) {
        SpmmCounters cnt;
        const size_t channels = b.cols();
        uint64_t live_nnz = 0, live_rows = 0;
        for (NodeId i = 0; i < a.numRows; ++i) {
            if (skip_row[i])
                continue;
            live_rows++;
            live_nnz += a.rowPtr[i + 1] - a.rowPtr[i];
        }
        cnt.aReads = live_nnz;
        cnt.bIrregularReads = live_nnz * channels;
        cnt.macOps = live_nnz * channels;
        cnt.cStreamedWrites = live_rows * channels;
        *counters += cnt;
    }
}

DenseMatrix
spmmPullInnerProduct(const CsrMatrix &a, const DenseMatrix &b,
                     SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);
    KernelRegion region("spmm_pull_inner_product");

    // Every output element is an independent inner product: shard the
    // row range across workers. Each element accumulates its row's
    // edges in ascending order regardless of the split, so the result
    // is bit-identical at any thread count.
    globalPool().parallelFor(0, a.numRows,
                             [&](int, size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            for (size_t ch = 0; ch < channels; ++ch) {
                float acc = 0.0f;
                for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                    acc += a.values[e] * b.at(a.colIdx[e], ch);
                c.at(i, ch) = acc;
            }
        }
    }, /*min_per_worker=*/16);

    // Dataflow profile (Table 1): the per-channel loop re-reads each
    // non-zero of A every channel and pulls single B-column elements
    // irregularly; outputs are produced streamed one element at a
    // time. Arithmetic, so exact at every thread count.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz() * channels;
        cnt.bIrregularReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cStreamedWrites =
            static_cast<uint64_t>(a.numRows) * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
spmmPushColumnWise(const CsrMatrix &a, const DenseMatrix &b,
                   SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);
    KernelRegion region("spmm_push_column_wise");

    // Outer loop over channels: each pass broadcasts one feature
    // channel of every node to its neighbors. We iterate the non-zeros
    // of A by row here, but A(i, k) consumes B(k, ch) and produces
    // C(i, ch); per channel, B is read streamed and C is written into
    // a column buffer (streamed if it fits on chip). Channels are
    // independent — workers own disjoint channel ranges, i.e. disjoint
    // columns of C, so each element keeps its sequential edge
    // accumulation order and the result is bit-identical at any
    // thread count.
    globalPool().parallelFor(0, channels,
                             [&](int, size_t ch0, size_t ch1) {
        for (size_t ch = ch0; ch < ch1; ++ch) {
            for (NodeId i = 0; i < a.numRows; ++i) {
                for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                    c.at(i, ch) += a.values[e] * b.at(a.colIdx[e], ch);
            }
        }
    });

    // Per channel: every non-zero of A is re-read, consumes one
    // streamed element of B's channel column and read-modify-writes
    // one C element selected by the non-zero's row id.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz() * channels;
        cnt.bStreamedReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cIrregularWrites = a.nnz() * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
spmmPushOuterProduct(const CsrMatrix &a, const DenseMatrix &b,
                     SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);
    KernelRegion region("spmm_push_outer_product");

    // The push outer-product dataflow processes non-zeros of A by
    // column k — node k broadcasts its whole feature row B(k,:) into
    // C(i,:) for every A(i,k) != 0 — and that scatter races under
    // column sharding. Executed as a gather instead, each output row
    // i pulls exactly its own non-zeros A(i,k) in ascending-k order
    // (CSR neighbor lists are sorted), which is the same per-element
    // accumulation order the column sweep produces: workers own
    // disjoint rows of C, no per-worker speculation buffers and no
    // per-call CSC rebuild, and the result is bit-identical to the
    // sequential column-order scatter at any thread count. The
    // counters below still model the logical push dataflow.
    gatherTiled(a.rowPtr, a.colIdx, a.values, b, c);

    // Per column: one streamed read of the full B row (empty columns
    // included, as the hardware prefetches the broadcast row before
    // consulting the column's non-zeros); per non-zero: one A read
    // and a full-row irregular read-modify-write of Xo.
    if (counters) {
        SpmmCounters cnt;
        cnt.bStreamedReads =
            static_cast<uint64_t>(a.numCols) * channels;
        cnt.aReads = a.nnz();
        cnt.macOps = a.nnz() * channels;
        cnt.cIrregularWrites = a.nnz() * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
csrTimesDense(const CsrMatrix &x, const DenseMatrix &w,
              SpmmCounters *counters)
{
    return spmmPullRowWise(x, w, counters);
}

DenseMatrix
csrTransposeTimesDense(const CsrMatrix &x, const DenseMatrix &b)
{
    if (x.numRows != b.rows())
        throw std::invalid_argument(
            "shape mismatch in csrTransposeTimesDense");

    // C(j, :) = sum over non-zeros X(r, j) of X(r, j) * B(r, :): a
    // scatter in row order, but a race-free gather over the cached
    // CSC adjunct — column j of X lists exactly the non-zeros of
    // output row j, in ascending r order (the sequential scatter's
    // order), so workers own disjoint output rows and the result is
    // bit-identical to the sequential scatter at any thread count.
    // The adjunct is built once per matrix and reused across calls
    // (every training epoch hits this kernel with the same features).
    const CscIndex &csc = x.csc();
    DenseMatrix c(x.numCols, b.cols());
    KernelRegion region("csr_transpose_times_dense");
    gatherTiled(csc.colPtr, csc.rowOf, csc.valOf, b, c);
    return c;
}

CsrFeatures
csrGather(const CsrFeatures &x, std::span<const NodeId> rows)
{
    for (NodeId r : rows)
        if (r >= x.numRows)
            throw std::out_of_range("csrGather: row " +
                                    std::to_string(r) + " >= numRows " +
                                    std::to_string(x.numRows));

    CsrFeatures out;
    out.numRows = static_cast<NodeId>(rows.size());
    out.numCols = x.numCols;
    out.rowPtr.assign(rows.size() + 1, 0);
    for (size_t i = 0; i < rows.size(); ++i)
        out.rowPtr[i + 1] = out.rowPtr[i] + x.rowNnz(rows[i]);
    out.colIdx.resize(out.rowPtr.back());
    out.values.resize(out.rowPtr.back());

    // Each output row copies exactly one source row into its own
    // prefix-summed slot: disjoint writes, so the parallel copy is
    // race-free and trivially bit-identical at any thread count.
    KernelRegion region("csr_gather");
    globalPool().parallelFor(0, rows.size(),
                             [&](int, size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const EdgeId src = x.rowPtr[rows[i]];
            const EdgeId n = out.rowPtr[i + 1] - out.rowPtr[i];
            std::copy_n(x.colIdx.data() + src, n,
                        out.colIdx.data() + out.rowPtr[i]);
            std::copy_n(x.values.data() + src, n,
                        out.values.data() + out.rowPtr[i]);
        }
    }, /*min_per_worker=*/64);
    return out;
}

DenseMatrix
sparseTimesDense(const CsrFeatures &x, const DenseMatrix &w,
                 SpmmCounters *counters)
{
    if (x.numCols != w.rows())
        throw std::invalid_argument("sparseTimesDense shape mismatch");
    const size_t channels = w.cols();
    DenseMatrix c(x.numRows, channels);
    KernelRegion region("sparse_times_dense");
    gatherTiled(x.rowPtr, x.colIdx, x.values, w, c);

    // Same pull-row-wise access profile as spmmPullRowWise: one A
    // read and one irregular full-row B pull per stored entry, one
    // streamed write per output element. Arithmetic in nnz and
    // channels, so thread-count exact and directly comparable to the
    // dense path's rows * k * n accounting.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = x.nnz();
        cnt.bIrregularReads = x.nnz() * channels;
        cnt.macOps = x.nnz() * channels;
        cnt.cStreamedWrites =
            static_cast<uint64_t>(x.numRows) * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
sparseTransposeTimesDense(const CsrFeatures &x, const DenseMatrix &b)
{
    if (x.numRows != b.rows())
        throw std::invalid_argument(
            "shape mismatch in sparseTransposeTimesDense");

    // Same race-free CSC gather as csrTransposeTimesDense: column j
    // of X lists output row j's entries in ascending row order (the
    // sequential scatter's order), workers own disjoint output rows.
    const CsrFeatures::CscView &csc = x.csc();
    DenseMatrix c(x.numCols, b.cols());
    KernelRegion region("sparse_transpose_times_dense");
    gatherTiled(csc.colPtr, csc.rowOf, csc.valOf, b, c);
    return c;
}

CsrFeatures
denseToCsrFeatures(const DenseMatrix &m)
{
    CsrFeatures out;
    out.numRows = static_cast<NodeId>(m.rows());
    out.numCols = static_cast<NodeId>(m.cols());
    out.rowPtr.assign(m.rows() + 1, 0);
    const size_t nnz = m.countNonZeros();
    out.colIdx.reserve(nnz);
    out.values.reserve(nnz);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
            if (m.at(r, c) != 0.0f) {
                out.colIdx.push_back(static_cast<NodeId>(c));
                out.values.push_back(m.at(r, c));
            }
        }
        out.rowPtr[r + 1] = out.colIdx.size();
    }
    return out;
}

DenseMatrix
csrFeaturesToDense(const CsrFeatures &x)
{
    DenseMatrix d(x.numRows, x.numCols);
    for (NodeId r = 0; r < x.numRows; ++r)
        for (EdgeId e = x.rowPtr[r]; e < x.rowPtr[r + 1]; ++e)
            d.at(r, x.colIdx[e]) = x.values[e];
    return d;
}

CsrMatrix
denseToCsr(const DenseMatrix &m)
{
    CsrMatrix out;
    out.numRows = static_cast<NodeId>(m.rows());
    out.numCols = static_cast<NodeId>(m.cols());
    out.rowPtr.assign(m.rows() + 1, 0);
    const size_t nnz = m.countNonZeros();
    out.colIdx.reserve(nnz);
    out.values.reserve(nnz);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
            if (m.at(r, c) != 0.0f) {
                out.colIdx.push_back(static_cast<NodeId>(c));
                out.values.push_back(m.at(r, c));
            }
        }
        out.rowPtr[r + 1] = out.colIdx.size();
    }
    return out;
}

} // namespace igcn
