/**
 * @file
 * Row-major dense float matrix, the operand type of the SpMM kernels
 * and the GCN reference forward pass.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "graph/rng.hpp"

namespace igcn {

/** Simple row-major dense matrix of floats. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    DenseMatrix(size_t rows, size_t cols, float fill = 0.0f)
        : numRows(rows), numCols(cols), values(rows * cols, fill)
    {}

    size_t rows() const { return numRows; }
    size_t cols() const { return numCols; }

    float &at(size_t r, size_t c) { return values[r * numCols + c]; }
    float at(size_t r, size_t c) const { return values[r * numCols + c]; }

    /** Pointer to the start of row r. */
    float *row(size_t r) { return values.data() + r * numCols; }
    const float *row(size_t r) const { return values.data() + r * numCols; }

    const std::vector<float> &data() const { return values; }
    std::vector<float> &data() { return values; }

    /** Set every element to zero. */
    void zero();

    /** Fill with uniform values in [-scale, scale). */
    void fillRandom(Rng &rng, float scale = 1.0f);

    /**
     * Fill with a sparse random pattern: each element is non-zero with
     * probability density; non-zeros are uniform in [-scale, scale).
     * @return the number of non-zeros placed.
     */
    size_t fillRandomSparse(Rng &rng, double density, float scale = 1.0f);

    /** Number of non-zero elements. */
    size_t countNonZeros() const;

    bool operator==(const DenseMatrix &other) const = default;

  private:
    size_t numRows = 0;
    size_t numCols = 0;
    std::vector<float> values;
};

/** Largest absolute element-wise difference; matrices must be same shape. */
double maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b);

/** Dense matrix product C = A * B. */
DenseMatrix gemm(const DenseMatrix &a, const DenseMatrix &b);

} // namespace igcn
