#include "spmm/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace igcn {

void
DenseMatrix::zero()
{
    std::fill(values.begin(), values.end(), 0.0f);
}

void
DenseMatrix::fillRandom(Rng &rng, float scale)
{
    for (auto &v : values)
        v = rng.nextFloat(scale);
}

size_t
DenseMatrix::fillRandomSparse(Rng &rng, double density, float scale)
{
    size_t nnz = 0;
    for (auto &v : values) {
        if (rng.nextBool(density)) {
            v = rng.nextFloat(scale);
            if (v == 0.0f)
                v = scale * 0.5f;
            nnz++;
        } else {
            v = 0.0f;
        }
    }
    return nnz;
}

size_t
DenseMatrix::countNonZeros() const
{
    size_t nnz = 0;
    for (float v : values)
        if (v != 0.0f)
            nnz++;
    return nnz;
}

double
maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument("shape mismatch in maxAbsDiff");
    double best = 0.0;
    for (size_t i = 0; i < a.data().size(); ++i)
        best = std::max(best,
                        std::fabs(static_cast<double>(a.data()[i]) -
                                  static_cast<double>(b.data()[i])));
    return best;
}

DenseMatrix
gemm(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        throw std::invalid_argument("shape mismatch in gemm");
    DenseMatrix c(a.rows(), b.cols());

    // i-blocked (one contiguous row block per worker) and k-tiled:
    // within a block the kKTile rows of B are swept once per output
    // row while still hot in cache. k advances in ascending order for
    // every (i, j), so the accumulation order — and therefore the
    // float result — matches the sequential kernel bit-for-bit at any
    // thread count.
    constexpr size_t kKTile = 64;
    KernelRegion region("gemm");
    globalPool().parallelFor(0, a.rows(),
                             [&](int, size_t i0, size_t i1) {
        for (size_t k0 = 0; k0 < a.cols(); k0 += kKTile) {
            const size_t k1 = std::min(a.cols(), k0 + kKTile);
            for (size_t i = i0; i < i1; ++i) {
                float *crow = c.row(i);
                for (size_t k = k0; k < k1; ++k) {
                    float aik = a.at(i, k);
                    if (aik == 0.0f)
                        continue;
                    const float *brow = b.row(k);
                    for (size_t j = 0; j < b.cols(); ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }, /*min_per_worker=*/8);
    return c;
}

} // namespace igcn
