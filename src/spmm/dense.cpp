#include "spmm/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace igcn {

void
DenseMatrix::zero()
{
    std::fill(values.begin(), values.end(), 0.0f);
}

void
DenseMatrix::fillRandom(Rng &rng, float scale)
{
    for (auto &v : values)
        v = rng.nextFloat(scale);
}

size_t
DenseMatrix::fillRandomSparse(Rng &rng, double density, float scale)
{
    size_t nnz = 0;
    for (auto &v : values) {
        if (rng.nextBool(density)) {
            v = rng.nextFloat(scale);
            if (v == 0.0f)
                v = scale * 0.5f;
            nnz++;
        } else {
            v = 0.0f;
        }
    }
    return nnz;
}

size_t
DenseMatrix::countNonZeros() const
{
    size_t nnz = 0;
    for (float v : values)
        if (v != 0.0f)
            nnz++;
    return nnz;
}

double
maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument("shape mismatch in maxAbsDiff");
    double best = 0.0;
    for (size_t i = 0; i < a.data().size(); ++i)
        best = std::max(best,
                        std::fabs(static_cast<double>(a.data()[i]) -
                                  static_cast<double>(b.data()[i])));
    return best;
}

DenseMatrix
gemm(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        throw std::invalid_argument("shape mismatch in gemm");
    DenseMatrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            float *crow = c.row(i);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

} // namespace igcn
