/**
 * @file
 * Sparse-dense matrix multiplication in the four dataflows the paper
 * analyzes (Figure 2): PULL-Row-Wise, PULL-Inner-Product,
 * PUSH-Column-Wise and PUSH-Outer-Product.
 *
 * All four compute the same product Xo = A * B; they differ in loop
 * order and therefore in which operand is reused and which is accessed
 * irregularly. Each kernel reports access counters that the Table 1
 * benchmark turns into the paper's qualitative comparison.
 */

#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "spmm/dense.hpp"

namespace igcn {

/** Sparse CSR matrix of floats (adjacency with normalization values). */
struct CsrMatrix
{
    NodeId numRows = 0;
    NodeId numCols = 0;
    std::vector<EdgeId> rowPtr{0};
    std::vector<NodeId> colIdx;
    std::vector<float> values;

    EdgeId nnz() const { return colIdx.size(); }

    /** Unweighted adjacency (all values 1) from a graph. */
    static CsrMatrix fromGraph(const CsrGraph &g);

    /** Dense copy, for verification on small matrices only. */
    DenseMatrix toDense() const;
};

/**
 * Access counters for one SpMM execution. "Irregular" accesses are
 * those whose address depends on a non-zero's coordinate (the ones
 * that defeat caches); "streamed" accesses are sequential.
 */
struct SpmmCounters
{
    uint64_t macOps = 0;           ///< multiply-accumulate operations
    uint64_t aReads = 0;           ///< non-zeros of A touched
    uint64_t bStreamedReads = 0;   ///< sequential element reads of B
    uint64_t bIrregularReads = 0;  ///< indexed element reads of B
    uint64_t cStreamedWrites = 0;  ///< sequential element writes of Xo
    uint64_t cIrregularWrites = 0; ///< indexed read-modify-writes of Xo

    SpmmCounters &
    operator+=(const SpmmCounters &o)
    {
        macOps += o.macOps;
        aReads += o.aReads;
        bStreamedReads += o.bStreamedReads;
        bIrregularReads += o.bIrregularReads;
        cStreamedWrites += o.cStreamedWrites;
        cIrregularWrites += o.cIrregularWrites;
        return *this;
    }
};

/**
 * PULL-Row-Wise (Figure 2-b1): rows of Xo produced in order; for each
 * non-zero A(i,k), the entire row B(k,:) is fetched and accumulated.
 */
DenseMatrix spmmPullRowWise(const CsrMatrix &a, const DenseMatrix &b,
                            SpmmCounters *counters = nullptr);

/**
 * PULL-Inner-Product (Figure 2-b2): output elements produced one
 * channel at a time; B is fetched column-by-column.
 */
DenseMatrix spmmPullInnerProduct(const CsrMatrix &a, const DenseMatrix &b,
                                 SpmmCounters *counters = nullptr);

/**
 * PUSH-Column-Wise (Figure 2-c1): outer loop over channels; each
 * node broadcasts its channel-k feature to its neighbors; Xo is
 * updated column by column.
 */
DenseMatrix spmmPushColumnWise(const CsrMatrix &a, const DenseMatrix &b,
                               SpmmCounters *counters = nullptr);

/**
 * PUSH-Outer-Product (Figure 2-c2): non-zeros of A processed by
 * column; each node's full feature row is broadcast to its neighbors
 * and Xo rows are updated irregularly.
 */
DenseMatrix spmmPushOuterProduct(const CsrMatrix &a, const DenseMatrix &b,
                                 SpmmCounters *counters = nullptr);

/** Sparse-times-dense where the left operand is a CSR feature matrix. */
DenseMatrix csrTimesDense(const CsrMatrix &x, const DenseMatrix &w,
                          SpmmCounters *counters = nullptr);

/**
 * C = X^T * B for CSR X (rows x k) and dense B (rows x n): the
 * backward-pass weight-gradient kernel for sparse feature matrices.
 * Parallel over rows of X with per-worker output accumulators merged
 * in worker order (bit-identical to the sequential scatter at one
 * thread, deterministic at any fixed thread count).
 */
DenseMatrix csrTransposeTimesDense(const CsrMatrix &x,
                                   const DenseMatrix &b);

/** Convert a dense matrix into CSR form (exact, drops zeros). */
CsrMatrix denseToCsr(const DenseMatrix &m);

} // namespace igcn
