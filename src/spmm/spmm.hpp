/**
 * @file
 * Sparse-dense matrix multiplication in the four dataflows the paper
 * analyzes (Figure 2): PULL-Row-Wise, PULL-Inner-Product,
 * PUSH-Column-Wise and PUSH-Outer-Product.
 *
 * All four compute the same product Xo = A * B; they differ in loop
 * order and therefore in which operand is reused and which is accessed
 * irregularly. Each kernel reports access counters that the Table 1
 * benchmark turns into the paper's qualitative comparison.
 */

#pragma once

#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "graph/csr_features.hpp"
#include "spmm/dense.hpp"

namespace igcn {

/**
 * Column-major (CSC) adjunct of a CsrMatrix: the same non-zeros
 * grouped by column, i.e. the transpose view. colPtr[k]..colPtr[k+1]
 * spans column k; within a column, entries are in ascending row
 * order (the CSR rows are swept ascending at build time), so a
 * gather over the CSC replays the row-ascending accumulation order
 * of a column-order scatter exactly.
 */
struct CscIndex
{
    std::vector<EdgeId> colPtr; ///< size numCols + 1
    std::vector<NodeId> rowOf;  ///< row id per non-zero
    std::vector<float> valOf;   ///< value per non-zero
};

/** Sparse CSR matrix of floats (adjacency with normalization values). */
struct CsrMatrix
{
    NodeId numRows = 0;
    NodeId numCols = 0;
    std::vector<EdgeId> rowPtr{0};
    std::vector<NodeId> colIdx;
    std::vector<float> values;

    EdgeId nnz() const { return colIdx.size(); }

    /** Unweighted adjacency (all values 1) from a graph. */
    [[nodiscard]] static CsrMatrix fromGraph(const CsrGraph &g);

    /** Dense copy, for verification on small matrices only. */
    DenseMatrix toDense() const;

    /**
     * The cached CSC adjunct, built lazily on first use (thread-safe
     * one-time construction; concurrent first callers all see the
     * same object). The push-style kernels gather through it instead
     * of rebuilding a transpose per call. Mutating rowPtr / colIdx /
     * values after the cache was built requires invalidateCsc();
     * copies and assignments start with an empty cache.
     */
    const CscIndex &csc() const;

    /** Drop the cached CSC (call after mutating the non-zeros). */
    void invalidateCsc() const { cscCache.invalidate(); }

  private:
    LazyAdjunct<CscIndex> cscCache;
};

/**
 * Access counters for one SpMM execution. "Irregular" accesses are
 * those whose address depends on a non-zero's coordinate (the ones
 * that defeat caches); "streamed" accesses are sequential.
 */
struct SpmmCounters
{
    uint64_t macOps = 0;           ///< multiply-accumulate operations
    uint64_t aReads = 0;           ///< non-zeros of A touched
    uint64_t bStreamedReads = 0;   ///< sequential element reads of B
    uint64_t bIrregularReads = 0;  ///< indexed element reads of B
    uint64_t cStreamedWrites = 0;  ///< sequential element writes of Xo
    uint64_t cIrregularWrites = 0; ///< indexed read-modify-writes of Xo

    SpmmCounters &
    operator+=(const SpmmCounters &o)
    {
        macOps += o.macOps;
        aReads += o.aReads;
        bStreamedReads += o.bStreamedReads;
        bIrregularReads += o.bIrregularReads;
        cStreamedWrites += o.cStreamedWrites;
        cIrregularWrites += o.cIrregularWrites;
        return *this;
    }
};

/**
 * PULL-Row-Wise (Figure 2-b1): rows of Xo produced in order; for each
 * non-zero A(i,k), the entire row B(k,:) is fetched and accumulated.
 */
DenseMatrix spmmPullRowWise(const CsrMatrix &a, const DenseMatrix &b,
                            SpmmCounters *counters = nullptr);

/**
 * spmmPullRowWise into a caller-provided output with a row skip
 * mask: rows i with skip_row[i] != 0 are left exactly as the caller
 * pre-filled them; every other row of c must arrive zeroed and is
 * accumulated identically to spmmPullRowWise — same edge order, same
 * channel tiling, same worker sharding — so unskipped rows are
 * bit-identical to the unmasked kernel at any IGCN_THREADS. This is
 * the serving cache's substitution point: skipped rows carry cached
 * layer-1 aggregates (serve/agg_cache.hpp). skip_row must have
 * a.numRows entries and c the product's shape.
 */
void spmmPullRowWiseMasked(const CsrMatrix &a, const DenseMatrix &b,
                           std::span<const uint8_t> skip_row,
                           DenseMatrix &c,
                           SpmmCounters *counters = nullptr);

/**
 * PULL-Inner-Product (Figure 2-b2): output elements produced one
 * channel at a time; B is fetched column-by-column.
 */
DenseMatrix spmmPullInnerProduct(const CsrMatrix &a, const DenseMatrix &b,
                                 SpmmCounters *counters = nullptr);

/**
 * PUSH-Column-Wise (Figure 2-c1): outer loop over channels; each
 * node broadcasts its channel-k feature to its neighbors; Xo is
 * updated column by column.
 */
DenseMatrix spmmPushColumnWise(const CsrMatrix &a, const DenseMatrix &b,
                               SpmmCounters *counters = nullptr);

/**
 * PUSH-Outer-Product (Figure 2-c2): non-zeros of A processed by
 * column; each node's full feature row is broadcast to its neighbors
 * and Xo rows are updated irregularly.
 */
DenseMatrix spmmPushOuterProduct(const CsrMatrix &a, const DenseMatrix &b,
                                 SpmmCounters *counters = nullptr);

/** Sparse-times-dense where the left operand is a CSR feature matrix. */
DenseMatrix csrTimesDense(const CsrMatrix &x, const DenseMatrix &w,
                          SpmmCounters *counters = nullptr);

/**
 * C = X^T * B for CSR X (rows x k) and dense B (rows x n): the
 * backward-pass weight-gradient kernel for sparse feature matrices.
 * A race-free gather over X's cached CSC adjunct: workers own
 * disjoint output rows (columns of X) and each output element
 * accumulates its column's non-zeros in ascending row order — the
 * sequential scatter's order — so the result is bit-identical to the
 * sequential kernel at any thread count.
 */
DenseMatrix csrTransposeTimesDense(const CsrMatrix &x,
                                   const DenseMatrix &b);

/** Convert a dense matrix into CSR form (exact, drops zeros). */
CsrMatrix denseToCsr(const DenseMatrix &m);

/**
 * Row-extraction kernel for CSR feature matrices: output row i is a
 * structural copy of x's row rows[i] (duplicates allowed, any order).
 * This is the serving engine's per-target-set gather — the sparse
 * analogue of the dense row-copy loop that builds a micro-batch's
 * x_local. Offsets are prefix-summed sequentially, then rows are
 * copied in parallel on the runtime pool; workers own disjoint output
 * rows, so the result is bit-identical at any IGCN_THREADS.
 * @throws std::out_of_range when a requested row id >= x.numRows.
 */
CsrFeatures csrGather(const CsrFeatures &x, std::span<const NodeId> rows);

/**
 * C = X * W for CSR features X (rows x k) and dense W (k x n): the
 * sparse first-layer combination kernel. Executes as the same
 * channel-tiled race-free row gather as spmmPullRowWise and reports
 * the pull-row-wise Table-1 access profile (aReads = nnz,
 * bIrregularReads = macOps = nnz * n, cStreamedWrites = rows * n) so
 * the accel models account sparse and dense inputs under one model.
 * Per output element the stored entries accumulate in ascending
 * column order — exactly the order dense gemm accumulates its
 * non-zero a(i,k) terms — so on a densified copy of X the result is
 * bit-identical to gemm, at any IGCN_THREADS.
 */
DenseMatrix sparseTimesDense(const CsrFeatures &x, const DenseMatrix &w,
                             SpmmCounters *counters = nullptr);

/**
 * C = X^T * B for CSR features X (rows x k) and dense B (rows x n):
 * the backward-pass weight-gradient kernel for sparse X. A race-free
 * gather over X's cached CSC view — bit-identical to the sequential
 * scatter at any thread count, same scheme as csrTransposeTimesDense.
 */
DenseMatrix sparseTransposeTimesDense(const CsrFeatures &x,
                                      const DenseMatrix &b);

/** Convert a dense matrix into CsrFeatures (exact, drops zeros). */
CsrFeatures denseToCsrFeatures(const DenseMatrix &m);

/** Densify a CsrFeatures matrix, for verification on small inputs. */
DenseMatrix csrFeaturesToDense(const CsrFeatures &x);

} // namespace igcn
