/**
 * @file
 * Table 2 reproduction: absolute latency (us) and energy efficiency
 * (Graph/kJ) of I-GCN and AWB-GCN on the five datasets, for GCN_algo
 * and GCN_Hy, at the paper's hardware point (Stratix 10 SX-class,
 * 330 MHz, 4096 MACs).
 */

#include "bench_common.hpp"

#include "accel/awbgcn_model.hpp"
#include "accel/report.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

namespace {

struct PaperRow
{
    double igcnLatency, igcnEE, awbLatency, awbEE;
};

// Table 2 of the paper (latency us, EE Graph/kJ).
const PaperRow kPaperAlgo[] = {
    {1.3, 7.1e6, 2.3, 3.1e6},    // Cora
    {1.9, 3.7e6, 4.0, 1.9e6},    // Citeseer
    {15.1, 5.3e5, 30.0, 2.5e5},  // Pubmed
    {5.9e2, 1.3e4, 1.6e3, 4.1e3},// Nell
    {3.0e4, 3.5e2, 3.2e4, 2.1e2},// Reddit
};
const PaperRow kPaperHy[] = {
    {8.2, 9.6e5, 17.0, 4.4e5},
    {12.9, 6.0e5, 29.0, 2.7e5},
    {1.1e2, 8.1e4, 2.3e2, 3.2e4},
    {1.2e3, 7.5e3, 3.3e3, 2.3e3},
    {4.6e4, 2.2e2, 5.0e4, 1.5e2},
};

} // namespace

int
main()
{
    banner("Table 2",
           "Absolute latency (us) and energy efficiency (Graph/kJ); "
           "device: Stratix 10 SX-class, 330 MHz, 4096 MACs");

    HwConfig hw;
    for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
        const PaperRow *paper =
            net == NetConfig::Algo ? kPaperAlgo : kPaperHy;
        std::printf("--- GCN_%s ---\n",
                    net == NetConfig::Algo ? "algo" : "Hy");
        TextTable table({"Dataset", "I-GCN us (paper)", "I-GCN us",
                         "I-GCN EE (paper)", "I-GCN EE",
                         "AWB us (paper)", "AWB us",
                         "AWB EE (paper)", "AWB EE"});
        int idx = 0;
        for (Dataset d : kAllDatasets) {
            const DatasetBundle &b = bundleFor(d);
            ModelConfig mc = modelConfig(Model::GCN, net, b.data.info);
            RunResult ig = simulateIgcn(b.data, mc, hw, &b.islands);
            RunResult awb = simulateAwbGcn(b.data, mc, hw);
            table.addRow({
                b.data.info.name,
                formatEng(paper[idx].igcnLatency, 3),
                formatEng(ig.latencyUs, 3),
                formatEng(paper[idx].igcnEE, 3),
                formatEng(ig.graphsPerKJ, 3),
                formatEng(paper[idx].awbLatency, 3),
                formatEng(awb.latencyUs, 3),
                formatEng(paper[idx].awbEE, 3),
                formatEng(awb.graphsPerKJ, 3),
            });
            idx++;
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("Note: Reddit runs at %.2f scale by default "
                "(IGCN_FULL_SCALE=1 for the full surrogate); the "
                "paper-vs-measured comparison is about shape — who "
                "wins and by roughly what factor — not absolute "
                "microseconds on a different substrate.\n",
                datasetScale(Dataset::Reddit));
    return 0;
}
