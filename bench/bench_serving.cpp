/**
 * @file
 * Serving benchmark: throughput and tail latency of the online
 * inference server versus micro-batch cap, update rate, and deletion
 * fraction, per dataset surrogate.
 *
 * Each configuration replays a deterministic synthetic trace (skewed
 * node popularity, bursty arrivals, interleaved edge additions and
 * deletions)
 * through a fresh Server in virtual-clock mode. Latency percentiles
 * come from the virtual clock (deterministic: batch formation is a
 * pure function of trace timestamps, service times from the cost
 * model); wall-clock throughput measures the real execution of the
 * same replay — extraction, sub-CSR builds, SpMM forward passes, and
 * incremental islandization repairs all run for real on the thread
 * pool.
 *
 * Usage: bench_serving [--quick]
 * Writes BENCH_serving.json (JsonWriter; CI parses it as a gate).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "gcn/models.hpp"
#include "gcn/reference.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace igcn;
using namespace igcn::bench;

namespace {

struct SweepPoint
{
    uint32_t batchCap;
    double updateRate;
    /** Fraction of updates that are edge deletions. */
    double removeFrac;
};

struct DatasetCase
{
    Dataset dataset;
    const char *name;
};

struct SloPoint
{
    uint32_t queueCap;
    double qpsBudget; ///< per-tenant; 0 = unmetered
    uint32_t staleness;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    banner("serving",
           "online inference: throughput & tail latency vs batch cap "
           "and update rate");

    const uint64_t num_inference = quick ? 1500 : 10000;
    const std::vector<SweepPoint> points = quick
        ? std::vector<SweepPoint>{{8, 0.0, 0.0}, {32, 0.1, 0.5}}
        : std::vector<SweepPoint>{{1, 0.0, 0.0},   {8, 0.0, 0.0},
                                  {32, 0.0, 0.0},  {128, 0.0, 0.0},
                                  {8, 0.05, 0.0},  {32, 0.05, 0.0},
                                  {32, 0.2, 0.0},  {128, 0.2, 0.0},
                                  {32, 0.05, 0.5}, {32, 0.2, 0.5},
                                  {32, 0.2, 1.0},  {128, 0.2, 0.5}};
    const std::vector<DatasetCase> cases = quick
        ? std::vector<DatasetCase>{{Dataset::Cora, "cora"}}
        : std::vector<DatasetCase>{{Dataset::Cora, "cora"},
                                   {Dataset::Pubmed, "pubmed"}};

    JsonWriter json;
    json.beginObject();
    json.key("bench").value("serving");
    json.key("quick").value(quick);
    json.key("hardware_concurrency").value(
        static_cast<uint64_t>(std::thread::hardware_concurrency()));
    json.key("requests").value(num_inference);
    json.key("datasets").beginArray();

    for (const DatasetCase &c : cases) {
        DatasetGraph data = buildDataset(c.dataset, datasetScale(c.dataset));
        Rng rng(7);
        Features x = makeFeatures(data.graph.numNodes(),
                                  data.info.numFeatures,
                                  data.info.featureDensity, rng);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, data.info);
        std::vector<DenseMatrix> weights = makeWeights(mc, rng);

        std::printf("%s: %u nodes, %llu edges, %d features, %d "
                    "layers\n",
                    c.name, data.graph.numNodes(),
                    static_cast<unsigned long long>(
                        data.graph.numEdges()),
                    data.info.numFeatures, mc.numLayers());
        std::printf("  %-9s %-8s %-8s | %9s %9s | %8s %8s %8s | %s\n",
                    "batch-cap", "upd-rate", "del-frac", "wall-rps",
                    "virt-rps", "p50us", "p95us", "p99us",
                    "mean-batch");

        json.beginObject();
        json.key("name").value(c.name);
        json.key("nodes").value(
            static_cast<uint64_t>(data.graph.numNodes()));
        json.key("edges").value(data.graph.numEdges());
        json.key("layers").value(mc.numLayers());
        json.key("configs").beginArray();

        for (const SweepPoint &p : points) {
            serve::TraceConfig tc;
            tc.numInference = num_inference;
            tc.numUpdates = static_cast<uint64_t>(
                p.updateRate * static_cast<double>(num_inference));
            tc.removeFraction = p.removeFrac;
            tc.seed = 11;
            std::vector<serve::Request> trace =
                serve::makeSyntheticTrace(data.graph, tc);

            serve::ServerConfig sc;
            sc.scheduler.maxBatch = p.batchCap;
            serve::Server server(data.graph, x, weights, sc);

            const auto t0 = std::chrono::steady_clock::now();
            serve::ReplayReport rep =
                server.runTrace(std::move(trace));
            const double wall_s = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      t0)
                                      .count();

            const serve::ServerStats &st = server.stats();
            const serve::LatencySummary lat = st.inferenceLatency();
            const double wall_rps =
                static_cast<double>(rep.inference.size()) / wall_s;

            std::printf("  %-9u %-8.2f %-8.2f | %9.0f %9.0f | %8.0f "
                        "%8.0f %8.0f | %6.1f\n",
                        p.batchCap, p.updateRate, p.removeFrac,
                        wall_rps, st.throughputRps(), lat.p50,
                        lat.p95, lat.p99, st.meanBatchSize());

            json.beginObject();
            json.key("batch_cap").value(
                static_cast<uint64_t>(p.batchCap));
            json.key("update_rate").value(p.updateRate);
            json.key("remove_fraction").value(p.removeFrac);
            json.key("updates").value(tc.numUpdates);
            json.key("wall_seconds").value(wall_s);
            json.key("wall_rps").value(wall_rps);
            json.key("virtual_rps").value(st.throughputRps());
            json.key("latency_p50_us").value(lat.p50);
            json.key("latency_p95_us").value(lat.p95);
            json.key("latency_p99_us").value(lat.p99);
            json.key("latency_mean_us").value(lat.meanUs);
            json.key("mean_batch").value(st.meanBatchSize());
            json.key("inference_batches").value(st.inferenceBatches());
            json.key("whole_graph_batches").value(
                st.wholeGraphBatches());
            json.key("update_applications").value(
                st.updateApplications());
            json.key("epochs").value(st.epochsPublished());
            json.key("edges_applied").value(st.edgesApplied());
            json.key("edges_removed").value(st.edgesRemoved());
            json.key("interleaves").value(st.interleaves());
            json.key("mean_subgraph_nodes").value(
                st.meanSubgraphNodes());
            json.endObject();
        }
        json.endArray(); // configs
        json.key("peak_rss_kb").value(peakRssKb());
        json.endObject();
        std::printf("\n");
    }
    json.endArray(); // datasets

    // --- agg-cache sweep: Zipf popularity, cached vs uncached -----
    // Two popularity exponents (sub-critical 0.8 and heavy 1.1),
    // each replayed twice through otherwise-identical servers with
    // the island-aggregation cache off then on. Logits are compared
    // per request id across the two arms — the cache's bit-identity
    // contract, checked on the real bench trace, not just unit
    // fixtures. CI gates on the alpha=1.1 sweep: hit rate >= 0.5 and
    // cached p99 <= uncached p99.
    {
        DatasetGraph data =
            buildDataset(Dataset::Cora, datasetScale(Dataset::Cora));
        Rng rng(7);
        Features x = makeFeatures(data.graph.numNodes(),
                                  data.info.numFeatures,
                                  data.info.featureDensity, rng);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, data.info);
        std::vector<DenseMatrix> weights = makeWeights(mc, rng);

        const uint64_t n_req = quick ? 2000 : 8000;
        std::printf("agg-cache sweep: cora Zipf trace (%llu "
                    "requests)\n",
                    static_cast<unsigned long long>(n_req));
        std::printf("  %-6s %-8s | %8s %8s | %8s %8s %10s | %s\n",
                    "alpha", "cache", "p50us", "p99us", "hitrate",
                    "fills", "peakrss-kb", "identical");

        json.key("agg_cache").beginObject();
        json.key("dataset").value("cora");
        json.key("requests").value(n_req);
        json.key("sweeps").beginArray();

        for (const double alpha : {0.8, 1.1}) {
            serve::TraceConfig tc;
            tc.numInference = n_req;
            tc.numUpdates = n_req / 100;
            tc.zipfAlpha = alpha;
            tc.seed = 11;
            const std::vector<serve::Request> trace =
                serve::makeSyntheticTrace(data.graph, tc);

            struct Arm
            {
                std::map<uint64_t, std::vector<float>> logits;
                serve::LatencySummary lat;
                double wallRps = 0;
                uint64_t peakRssKbAfter = 0;
                double hitRate = 0;
                uint64_t hits = 0, misses = 0, fills = 0,
                         evictions = 0, invalidated = 0, bytes = 0;
            };
            Arm arms[2];
            // Uncached first: peakRssKb is process-monotone, so the
            // cached arm's reading includes exactly the cache's
            // extra footprint on top of this baseline.
            for (const bool cached : {false, true}) {
                serve::ServerConfig sc;
                sc.scheduler.maxBatch = 32;
                sc.aggCache.enabled = cached;
                serve::Server server(data.graph, x, weights, sc);
                const auto t0 = std::chrono::steady_clock::now();
                serve::ReplayReport rep = server.runTrace(trace);
                const double wall_s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                Arm &a = arms[cached ? 1 : 0];
                for (const serve::InferenceResult &r : rep.inference)
                    a.logits[r.id] = r.logits;
                const serve::ServerStats &st = server.stats();
                a.lat = st.inferenceLatency();
                a.wallRps =
                    static_cast<double>(rep.inference.size()) /
                    wall_s;
                a.peakRssKbAfter = peakRssKb();
                a.hitRate = st.aggCacheHitRate();
                a.hits = st.aggCacheHits();
                a.misses = st.aggCacheMisses();
                a.fills = st.aggCacheFills();
                a.evictions = st.aggCacheEvictions();
                a.invalidated = st.aggCacheInvalidated();
                a.bytes = st.aggCacheBytes();
            }
            const bool identical = arms[0].logits == arms[1].logits;

            for (int i = 0; i < 2; ++i)
                std::printf("  %-6.1f %-8s | %8.0f %8.0f | %8.2f "
                            "%8llu %10llu | %s\n",
                            alpha, i ? "on" : "off", arms[i].lat.p50,
                            arms[i].lat.p99, arms[i].hitRate,
                            static_cast<unsigned long long>(
                                arms[i].fills),
                            static_cast<unsigned long long>(
                                arms[i].peakRssKbAfter),
                            identical ? "yes" : "NO");

            json.beginObject();
            json.key("zipf_alpha").value(alpha);
            json.key("updates").value(tc.numUpdates);
            json.key("results_identical").value(identical);
            for (int i = 0; i < 2; ++i) {
                json.key(i ? "cached" : "uncached").beginObject();
                json.key("latency_p50_us").value(arms[i].lat.p50);
                json.key("latency_p99_us").value(arms[i].lat.p99);
                json.key("wall_rps").value(arms[i].wallRps);
                json.key("peak_rss_kb").value(arms[i].peakRssKbAfter);
                json.key("hit_rate").value(arms[i].hitRate);
                json.key("hits").value(arms[i].hits);
                json.key("misses").value(arms[i].misses);
                json.key("fills").value(arms[i].fills);
                json.key("evictions").value(arms[i].evictions);
                json.key("invalidated").value(arms[i].invalidated);
                json.key("resident_bytes").value(arms[i].bytes);
                json.endObject();
            }
            json.endObject();
        }
        json.endArray(); // sweeps
        json.endObject(); // agg_cache
        std::printf("\n");
    }

    // --- feature-density sweep: CSR vs dense X on NellSmall -------
    // The tentpole scenario: the 0.01-density NELL surrogate served
    // with CSR features versus the densified image, at densities
    // 0.01 / 0.1 / 1.0. feature_kb is the exact storage scoreboard;
    // peak_rss_kb corroborates it — the process peak is monotone, so
    // the three CSR arms run first and the staircase up to the dense
    // arms is the memory the sparse path never touches.
    {
        const double ds_scale = quick ? 0.25 : 0.5;
        DatasetGraph data = buildDataset(Dataset::NellSmall, ds_scale);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, data.info);
        Rng wrng(7);
        std::vector<DenseMatrix> weights = makeWeights(mc, wrng);

        serve::TraceConfig tc;
        tc.numInference = quick ? 400 : 2000;
        tc.numUpdates = tc.numInference / 20;
        tc.seed = 11;
        std::vector<serve::Request> trace =
            serve::makeSyntheticTrace(data.graph, tc);

        std::printf("density sweep: nell-small (%u nodes, %d "
                    "features, %zu requests)\n",
                    data.graph.numNodes(), data.info.numFeatures,
                    trace.size());
        std::printf("  %-8s %-6s | %10s %10s | %9s %8s %8s | %10s\n",
                    "density", "form", "feat-kb", "nnz", "wall-rps",
                    "p50us", "p99us", "peakrss-kb");

        json.key("density_sweep").beginObject();
        json.key("dataset").value("nell-small");
        json.key("nodes").value(
            static_cast<uint64_t>(data.graph.numNodes()));
        json.key("features").value(data.info.numFeatures);
        json.key("requests").value(
            static_cast<uint64_t>(trace.size()));
        json.key("configs").beginArray();

        const double densities[] = {0.01, 0.1, 1.0};
        for (const bool sparse_arm : {true, false}) {
            for (const double density : densities) {
                Rng rng(7);
                Features x = makeFeatures(data.graph.numNodes(),
                                          data.info.numFeatures,
                                          density, rng, sparse_arm);
                serve::ServerConfig sc;
                sc.scheduler.maxBatch = 32;
                serve::Server server(data.graph, x, weights, sc);

                const auto t0 = std::chrono::steady_clock::now();
                serve::ReplayReport rep = server.runTrace(trace);
                const double wall_s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

                const serve::ServerStats &st = server.stats();
                const serve::LatencySummary lat =
                    st.inferenceLatency();
                const double wall_rps =
                    static_cast<double>(rep.inference.size()) /
                    wall_s;
                const double feat_kb =
                    static_cast<double>(x.storageBytes()) / 1024.0;

                std::printf("  %-8.2f %-6s | %10.1f %10llu | %9.0f "
                            "%8.0f %8.0f | %10llu\n",
                            density, x.sparse ? "csr" : "dense",
                            feat_kb,
                            static_cast<unsigned long long>(x.nnz()),
                            wall_rps, lat.p50, lat.p99,
                            static_cast<unsigned long long>(
                                peakRssKb()));

                json.beginObject();
                json.key("density").value(density);
                json.key("representation")
                    .value(x.sparse ? "csr" : "dense");
                json.key("feature_kb").value(feat_kb);
                json.key("feature_nnz").value(x.nnz());
                json.key("wall_seconds").value(wall_s);
                json.key("wall_rps").value(wall_rps);
                json.key("latency_p50_us").value(lat.p50);
                json.key("latency_p99_us").value(lat.p99);
                json.key("mean_batch").value(st.meanBatchSize());
                json.key("whole_graph_batches")
                    .value(st.wholeGraphBatches());
                json.key("peak_rss_kb").value(peakRssKb());
                json.endObject();
            }
        }
        json.endArray(); // density configs
        json.endObject(); // density_sweep
        std::printf("\n");
    }

    // --- SLO sweep: admission control on an overloaded trace ------
    // A bursty multi-tenant trace whose arrival rate far exceeds the
    // service rate, replayed through the admission-controlled EDF
    // path over queue cap x per-tenant qps budget x staleness bound.
    // CI gates on this section: shedding must engage (nonzero shed)
    // while no admitted Strict-freshness request ever starts past its
    // deadline (zero by construction of drop-expired).
    {
        DatasetGraph data =
            buildDataset(Dataset::Cora, datasetScale(Dataset::Cora));
        Rng rng(7);
        Features x = makeFeatures(data.graph.numNodes(),
                                  data.info.numFeatures,
                                  data.info.featureDensity, rng);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, data.info);
        std::vector<DenseMatrix> weights = makeWeights(mc, rng);

        serve::TraceConfig tc;
        tc.numInference = quick ? 2000 : 8000;
        tc.numUpdates = tc.numInference / 10;
        tc.meanGapUs = 4.0; // heavy overload vs the service model
        tc.pattern = serve::ArrivalPattern::Burst;
        tc.numTenants = 4;
        tc.deadlineUs = 20000;
        tc.strictFraction = 0.1;
        tc.seed = 11;
        std::vector<serve::Request> overload =
            serve::makeSyntheticTrace(data.graph, tc);

        const std::vector<SloPoint> slo_points = quick
            ? std::vector<SloPoint>{{64, 0.0, 4}, {256, 20000.0, 0}}
            : std::vector<SloPoint>{{64, 0.0, 0},      {64, 0.0, 4},
                                    {256, 0.0, 4},     {1024, 0.0, 4},
                                    {256, 20000.0, 0}, {256, 20000.0, 4},
                                    {256, 50000.0, 4}};

        std::printf("slo sweep: cora overload trace (%zu requests, "
                    "burst, %u tenants, deadline %llu us)\n",
                    overload.size(), tc.numTenants,
                    static_cast<unsigned long long>(tc.deadlineUs));
        std::printf("  %-9s %-10s %-9s | %8s %8s %8s %8s %9s | %8s "
                    "%8s %6s\n",
                    "queue-cap", "qps-budget", "staleness", "admit",
                    "reject", "overload", "expired", "shedstale",
                    "p99us", "maxdepth", "viol");

        json.key("slo").beginObject();
        json.key("trace_requests").value(
            static_cast<uint64_t>(overload.size()));
        json.key("tenants").value(static_cast<uint64_t>(tc.numTenants));
        json.key("deadline_us").value(tc.deadlineUs);
        json.key("strict_fraction").value(tc.strictFraction);
        json.key("configs").beginArray();

        for (const SloPoint &p : slo_points) {
            serve::ServerConfig sc;
            sc.scheduler.maxBatch = 32;
            sc.slo.enabled = true;
            sc.slo.queueCap = p.queueCap;
            sc.slo.qpsBudget = p.qpsBudget;
            sc.slo.stalenessBound = p.staleness;

            serve::Server server(data.graph, x.dense, weights, sc);
            serve::ReplayReport rep = server.runTrace(overload);
            const serve::ServerStats &st = server.stats();
            const serve::LatencySummary lat = st.inferenceLatency();

            std::printf("  %-9u %-10.0f %-9u | %8llu %8llu %8llu "
                        "%8llu %9llu | %8.0f %8llu %6llu\n",
                        p.queueCap, p.qpsBudget, p.staleness,
                        static_cast<unsigned long long>(
                            st.admittedRequests()),
                        static_cast<unsigned long long>(
                            st.rejectedRequests()),
                        static_cast<unsigned long long>(
                            st.overloadedRequests()),
                        static_cast<unsigned long long>(
                            st.expiredRequests()),
                        static_cast<unsigned long long>(
                            st.shedStaleRequests()),
                        lat.p99,
                        static_cast<unsigned long long>(
                            st.maxQueueDepth()),
                        static_cast<unsigned long long>(
                            st.strictDeadlineViolations()));

            json.beginObject();
            json.key("queue_cap").value(
                static_cast<uint64_t>(p.queueCap));
            json.key("qps_budget").value(p.qpsBudget);
            json.key("staleness_bound").value(
                static_cast<uint64_t>(p.staleness));
            json.key("admitted").value(st.admittedRequests());
            json.key("rejected").value(st.rejectedRequests());
            json.key("overloaded").value(st.overloadedRequests());
            json.key("expired").value(st.expiredRequests());
            json.key("shed_stale").value(st.shedStaleRequests());
            json.key("shed_rate").value(st.shedRate());
            json.key("served").value(st.inferenceRequests());
            json.key("rejections").value(
                static_cast<uint64_t>(rep.rejections.size()));
            json.key("latency_p99_us").value(lat.p99);
            json.key("max_queue_depth").value(st.maxQueueDepth());
            json.key("strict_deadline_violations").value(
                st.strictDeadlineViolations());
            json.key("stale_serves").value(st.staleServes());
            json.key("tenants").beginArray();
            for (const auto &[tenant, ts] : st.tenantStats()) {
                json.beginObject();
                json.key("tenant").value(
                    static_cast<uint64_t>(tenant));
                json.key("admitted").value(ts.admitted);
                json.key("shed").value(ts.shed());
                json.key("dropped").value(ts.dropped());
                json.key("served").value(ts.served);
                json.key("p99_us").value(
                    server.stats().tenantLatency(tenant).p99);
                json.endObject();
            }
            json.endArray(); // tenants
            json.key("staleness_histogram").beginArray();
            for (const auto &[behind, count] :
                 st.stalenessHistogram()) {
                json.beginObject();
                json.key("epochs_behind").value(
                    static_cast<uint64_t>(behind));
                json.key("served").value(count);
                json.endObject();
            }
            json.endArray(); // staleness_histogram
            json.endObject();
        }
        json.endArray(); // slo configs
        json.endObject(); // slo
        std::printf("\n");
    }

    // --- observability overhead: tracing off vs on ----------------
    // The same trace replayed through identical servers, the only
    // difference being cfg.obs.traceEnabled. Best-of-3 wall time per
    // arm absorbs scheduler noise. CI gates overhead_pct < 5: span
    // recording must stay a rounding error next to the kernels.
    {
        DatasetGraph data =
            buildDataset(Dataset::Cora, datasetScale(Dataset::Cora));
        Rng rng(7);
        Features x = makeFeatures(data.graph.numNodes(),
                                  data.info.numFeatures,
                                  data.info.featureDensity, rng);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, data.info);
        std::vector<DenseMatrix> weights = makeWeights(mc, rng);

        serve::TraceConfig tc;
        tc.numInference = quick ? 1500 : 6000;
        tc.numUpdates = tc.numInference / 20;
        tc.seed = 11;
        const std::vector<serve::Request> trace =
            serve::makeSyntheticTrace(data.graph, tc);

        auto best_of_3 = [&](bool traced) {
            double best_s = 1e30;
            uint64_t events = 0;
            for (int rep = 0; rep < 3; ++rep) {
                serve::ServerConfig sc;
                sc.scheduler.maxBatch = 32;
                sc.obs.traceEnabled = traced;
                serve::Server server(data.graph, x, weights, sc);
                const auto t0 = std::chrono::steady_clock::now();
                serve::ReplayReport r = server.runTrace(trace);
                const double wall_s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                best_s = std::min(best_s, wall_s);
                events = server.traceRecorder().size();
                if (r.inference.size() != tc.numInference)
                    std::printf("WARNING: short replay\n");
            }
            return std::pair<double, uint64_t>(
                static_cast<double>(tc.numInference) / best_s,
                events);
        };

        const auto [rps_off, ev_off] = best_of_3(false);
        const auto [rps_on, ev_on] = best_of_3(true);
        (void)ev_off;
        const double overhead_pct =
            rps_on > 0.0 ? (rps_off / rps_on - 1.0) * 100.0 : 0.0;

        std::printf("obs overhead: cora replay (%llu requests)\n",
                    static_cast<unsigned long long>(tc.numInference));
        std::printf("  tracing off: %9.0f rps | tracing on: %9.0f "
                    "rps (%llu events) | overhead %+.2f%%\n\n",
                    rps_off, rps_on,
                    static_cast<unsigned long long>(ev_on),
                    overhead_pct);

        json.key("obs_overhead").beginObject();
        json.key("requests").value(tc.numInference);
        json.key("wall_rps_trace_off").value(rps_off);
        json.key("wall_rps_trace_on").value(rps_on);
        json.key("trace_events").value(ev_on);
        json.key("overhead_pct").value(overhead_pct);
        json.endObject(); // obs_overhead
    }
    json.endObject();

    if (!json.writeFile("BENCH_serving.json"))
        std::printf("WARNING: could not write BENCH_serving.json\n");
    else
        std::printf("wrote BENCH_serving.json\n");
    return 0;
}
