/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot kernels:
 * SpMM dataflows, islandization, island bitmap construction, window
 * op counting, and the island-based aggregation itself.
 */

#include <benchmark/benchmark.h>

#include "core/consumer.hpp"
#include "core/locator.hpp"
#include "core/redundancy.hpp"
#include "graph/generators.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

const CsrGraph &
benchGraph()
{
    static const CsrGraph g = hubAndIslandGraph(
        {.numNodes = 20000, .seed = 42}).graph;
    return g;
}

const IslandizationResult &
benchIslands()
{
    static const IslandizationResult isl = islandize(benchGraph());
    return isl;
}

void
BM_SpmmPullRowWise(benchmark::State &state)
{
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    Rng rng(1);
    DenseMatrix b(benchGraph().numNodes(),
                  static_cast<size_t>(state.range(0)));
    b.fillRandom(rng);
    for (auto _ : state) {
        DenseMatrix c = spmmPullRowWise(a, b, nullptr);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() *
                            state.range(0));
}
BENCHMARK(BM_SpmmPullRowWise)->Arg(16)->Arg(64);

void
BM_SpmmPushOuterProduct(benchmark::State &state)
{
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    Rng rng(1);
    DenseMatrix b(benchGraph().numNodes(),
                  static_cast<size_t>(state.range(0)));
    b.fillRandom(rng);
    for (auto _ : state) {
        DenseMatrix c = spmmPushOuterProduct(a, b, nullptr);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() *
                            state.range(0));
}
BENCHMARK(BM_SpmmPushOuterProduct)->Arg(16);

void
BM_Islandize(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    for (auto _ : state) {
        IslandizationResult isl = islandize(g);
        benchmark::DoNotOptimize(isl.islands.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_Islandize);

void
BM_CountPruning(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    RedundancyConfig cfg;
    for (auto _ : state) {
        PruningReport r = countPruning(g, isl, cfg);
        benchmark::DoNotOptimize(r.interHubOps);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_CountPruning);

void
BM_AggregateViaIslands(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    Rng rng(2);
    DenseMatrix y(g.numNodes(), 16);
    y.fillRandom(rng);
    RedundancyConfig cfg;
    for (auto _ : state) {
        DenseMatrix z = aggregateViaIslands(g, isl, y, cfg);
        benchmark::DoNotOptimize(z.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            (g.numEdges() + g.numNodes()) * 16);
}
BENCHMARK(BM_AggregateViaIslands);

void
BM_BuildIslandBitmap(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    for (auto _ : state) {
        uint64_t bits = 0;
        for (const Island &island : isl.islands) {
            IslandBitmap bm = buildIslandBitmap(g, island, true);
            bits += bm.countBits();
        }
        benchmark::DoNotOptimize(bits);
    }
    state.SetItemsProcessed(state.iterations() * isl.islands.size());
}
BENCHMARK(BM_BuildIslandBitmap);

} // namespace
} // namespace igcn

BENCHMARK_MAIN();
