/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot kernels:
 * SpMM dataflows, islandization, island bitmap construction, window
 * op counting, and the island-based aggregation itself.
 *
 * The rewritten gather kernels (push outer-product, transpose) sweep
 * the thread count as a second benchmark argument — the per-kernel
 * speedup is the time ratio between the 1-thread and N-thread rows —
 * and report the process memory high-water mark before and after the
 * run as counters (rss_before_kb / rss_after_kb). Peak RSS is
 * process-monotonic, so in a full run every benchmark after the
 * first big one reports the same global high-water mark; to
 * attribute the mark to one kernel (e.g. to see the speculation
 * buffers' removal), run it alone via
 * --benchmark_filter=OuterProduct or =Transpose.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/consumer.hpp"
#include "core/locator.hpp"
#include "core/redundancy.hpp"
#include "gcn/reference.hpp"
#include "graph/generators.hpp"
#include "obs/runtime.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

/** Attach before/after peak-RSS counters to a benchmark's report. */
class RssScope
{
  public:
    explicit RssScope(benchmark::State &state)
        : st(state), before(bench::peakRssKb())
    {}

    ~RssScope()
    {
        st.counters["rss_before_kb"] = static_cast<double>(before);
        st.counters["rss_after_kb"] =
            static_cast<double>(bench::peakRssKb());
    }

  private:
    benchmark::State &st;
    uint64_t before;
};

const CsrGraph &
benchGraph()
{
    static const CsrGraph g = hubAndIslandGraph(
        {.numNodes = 20000, .seed = 42}).graph;
    return g;
}

const IslandizationResult &
benchIslands()
{
    static const IslandizationResult isl = islandize(benchGraph());
    return isl;
}

void
BM_SpmmPullRowWise(benchmark::State &state)
{
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    Rng rng(1);
    DenseMatrix b(benchGraph().numNodes(),
                  static_cast<size_t>(state.range(0)));
    b.fillRandom(rng);
    for (auto _ : state) {
        DenseMatrix c = spmmPullRowWise(a, b, nullptr);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() *
                            state.range(0));
}
BENCHMARK(BM_SpmmPullRowWise)->Arg(16)->Arg(64);

void
BM_SpmmPushOuterProduct(benchmark::State &state)
{
    RssScope rss(state);
    setGlobalThreads(static_cast<int>(state.range(1)));
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    Rng rng(1);
    DenseMatrix b(benchGraph().numNodes(),
                  static_cast<size_t>(state.range(0)));
    b.fillRandom(rng);
    for (auto _ : state) {
        DenseMatrix c = spmmPushOuterProduct(a, b, nullptr);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() *
                            state.range(0));
    setGlobalThreads(0);
}
BENCHMARK(BM_SpmmPushOuterProduct)
    ->ArgsProduct({{16}, {1, 2, 4}});

void
BM_CsrTransposeTimesDense(benchmark::State &state)
{
    RssScope rss(state);
    setGlobalThreads(static_cast<int>(state.range(1)));
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    Rng rng(1);
    DenseMatrix b(benchGraph().numNodes(),
                  static_cast<size_t>(state.range(0)));
    b.fillRandom(rng);
    (void)a.csc(); // steady state: the adjunct is built once
    for (auto _ : state) {
        DenseMatrix c = csrTransposeTimesDense(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() *
                            state.range(0));
    setGlobalThreads(0);
}
BENCHMARK(BM_CsrTransposeTimesDense)
    ->ArgsProduct({{16}, {1, 2, 4}});

void
BM_CscAdjunctBuild(benchmark::State &state)
{
    // Cost of the one-time CSC construction the cache amortizes away
    // (the old outer-product kernel paid this on every call).
    CsrMatrix a = CsrMatrix::fromGraph(benchGraph());
    for (auto _ : state) {
        a.invalidateCsc();
        benchmark::DoNotOptimize(&a.csc());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CscAdjunctBuild);

void
BM_CsrGather(benchmark::State &state)
{
    // The serving engine's per-micro-batch row extraction: pull a
    // receptive field's rows out of a NELL-shaped CSR feature matrix.
    // range(0) = density in permille, range(1) = threads.
    RssScope rss(state);
    setGlobalThreads(static_cast<int>(state.range(1)));
    const double density =
        static_cast<double>(state.range(0)) / 1000.0;
    Rng rng(3);
    Features x = makeFeatures(20000, 4096, density, rng,
                              /*force_sparse=*/true);
    std::vector<NodeId> rows(1024);
    for (NodeId &r : rows)
        r = static_cast<NodeId>(rng.nextBounded(20000));
    for (auto _ : state) {
        CsrFeatures sub = csrGather(x.csr, rows);
        benchmark::DoNotOptimize(sub.values.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(x.nnz()) * 1024 /
                            20000);
    setGlobalThreads(0);
}
BENCHMARK(BM_CsrGather)->ArgsProduct({{10, 100}, {1, 2, 4}});

void
BM_FirstLayerCombination(benchmark::State &state)
{
    // Layer-0 X*W at one shape in both storage forms — the time
    // ratio between the sparse=1 and sparse=0 rows at one density is
    // the first-layer speedup the CSR path buys. range(0) = density
    // in permille, range(1) = sparse form, range(2) = threads.
    RssScope rss(state);
    setGlobalThreads(static_cast<int>(state.range(2)));
    const double density =
        static_cast<double>(state.range(0)) / 1000.0;
    const bool sparse = state.range(1) != 0;
    Rng rng(3);
    Features x = makeFeatures(4096, 4096, density, rng, sparse);
    DenseMatrix w(4096, 16);
    w.fillRandom(rng);
    for (auto _ : state) {
        DenseMatrix c = sparse ? sparseTimesDense(x.csr, w, nullptr)
                               : gemm(x.dense, w);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(x.nnz()) * 16);
    setGlobalThreads(0);
}
BENCHMARK(BM_FirstLayerCombination)
    ->ArgsProduct({{10, 100}, {0, 1}, {1, 4}});

void
BM_SparseTransposeTimesDense(benchmark::State &state)
{
    // Backward-pass X^T * dU for CSR features, steady-state (the CSC
    // adjunct is built once and reused across epochs).
    RssScope rss(state);
    setGlobalThreads(static_cast<int>(state.range(1)));
    const double density =
        static_cast<double>(state.range(0)) / 1000.0;
    Rng rng(3);
    Features x = makeFeatures(20000, 4096, density, rng,
                              /*force_sparse=*/true);
    DenseMatrix b(20000, 16);
    b.fillRandom(rng);
    (void)x.csr.csc();
    for (auto _ : state) {
        DenseMatrix c = sparseTransposeTimesDense(x.csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(x.nnz()) * 16);
    setGlobalThreads(0);
}
BENCHMARK(BM_SparseTransposeTimesDense)
    ->ArgsProduct({{10}, {1, 4}});

void
BM_Islandize(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    for (auto _ : state) {
        IslandizationResult isl = islandize(g);
        benchmark::DoNotOptimize(isl.islands.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_Islandize);

void
BM_CountPruning(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    RedundancyConfig cfg;
    for (auto _ : state) {
        PruningReport r = countPruning(g, isl, cfg);
        benchmark::DoNotOptimize(r.interHubOps);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_CountPruning);

void
BM_AggregateViaIslands(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    Rng rng(2);
    DenseMatrix y(g.numNodes(), 16);
    y.fillRandom(rng);
    RedundancyConfig cfg;
    for (auto _ : state) {
        DenseMatrix z = aggregateViaIslands(g, isl, y, cfg);
        benchmark::DoNotOptimize(z.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            (g.numEdges() + g.numNodes()) * 16);
}
BENCHMARK(BM_AggregateViaIslands);

void
BM_BuildIslandBitmap(benchmark::State &state)
{
    const CsrGraph &g = benchGraph();
    const IslandizationResult &isl = benchIslands();
    for (auto _ : state) {
        uint64_t bits = 0;
        for (const Island &island : isl.islands) {
            IslandBitmap bm = buildIslandBitmap(g, island, true);
            bits += bm.countBits();
        }
        benchmark::DoNotOptimize(bits);
    }
    state.SetItemsProcessed(state.iterations() * isl.islands.size());
}
BENCHMARK(BM_BuildIslandBitmap);

} // namespace
} // namespace igcn

/**
 * Custom main instead of BENCHMARK_MAIN(): the whole run executes
 * under the pool's observer hook, and the per-kernel wall/busy
 * totals (SpMM dataflows, gathers, islandization — every labeled
 * parallelFor region) print as one table after the benchmark report.
 */
int
main(int argc, char **argv)
{
    igcn::obs::enableRuntimeProfiling();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    igcn::obs::disableRuntimeProfiling();

    const std::string table =
        igcn::obs::kernelTimingReport(igcn::obs::runtimeRegistry());
    if (!table.empty())
        std::printf("\nper-kernel timing (pool observer totals)\n%s",
                    table.c_str());
    return 0;
}
