/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  - pre-aggregation window k (fixed 2/4/8/16 vs adaptive vs off);
 *  - lazy vs hardware-charged pre-aggregation accounting;
 *  - maximum island size cmax;
 *  - threshold decay schedule;
 *  - locator parallel factors P1/P2;
 *  - ring in-network reduction on/off;
 *  - PE count at a fixed MAC budget.
 */

#include "bench_common.hpp"

#include "accel/report.hpp"
#include "core/redundancy.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Ablations", "Design-choice sweeps on Cora and Pubmed");

    for (Dataset d : {Dataset::Cora, Dataset::Pubmed}) {
        const DatasetBundle &b = bundleFor(d);
        std::printf("=== %s ===\n", b.data.info.name.c_str());

        // --- k sweep -------------------------------------------------
        std::printf("[pre-aggregation window k]\n");
        TextTable ktab({"k", "agg pruning %", "preagg ops",
                        "subtract-mode windows"});
        for (int k : {0, 2, 4, 8, 16}) {
            RedundancyConfig cfg;
            cfg.adaptiveK = false;
            cfg.k = k;
            PruningReport r = countPruning(b.data.graph, b.islands,
                                           cfg);
            ktab.addRow({k == 0 ? "off" : std::to_string(k),
                         formatEng(100 * r.aggPruningRate(), 3),
                         std::to_string(r.islandOps.preaggOps),
                         std::to_string(
                             r.islandOps.windowsSubtractMode)});
        }
        {
            RedundancyConfig cfg; // adaptive
            PruningReport r = countPruning(b.data.graph, b.islands,
                                           cfg);
            ktab.addRow({"adaptive", formatEng(
                             100 * r.aggPruningRate(), 3),
                         std::to_string(r.islandOps.preaggOps),
                         std::to_string(
                             r.islandOps.windowsSubtractMode)});
            RedundancyConfig lazy;
            lazy.lazyPreagg = true;
            PruningReport rl = countPruning(b.data.graph, b.islands,
                                            lazy);
            ktab.addRow({"adaptive+lazy-preagg",
                         formatEng(100 * rl.aggPruningRate(), 3),
                         std::to_string(rl.islandOps.preaggOps),
                         std::to_string(
                             rl.islandOps.windowsSubtractMode)});
        }
        std::printf("%s\n", ktab.toString().c_str());

        // --- cmax and decay sweeps ----------------------------------
        std::printf("[locator: cmax x decay]\n");
        TextTable ltab({"cmax", "decay", "rounds", "hubs", "islands",
                        "agg pruning %", "wasted scans %"});
        for (NodeId cmax : {16u, 32u, 64u, 128u}) {
            for (double decay : {0.5, 0.6, 0.75}) {
                LocatorConfig lcfg;
                lcfg.maxIslandSize = cmax;
                lcfg.decay = decay;
                auto isl = islandize(b.data.graph, lcfg);
                PruningReport r =
                    countPruning(b.data.graph, isl, {});
                ltab.addRow({
                    std::to_string(cmax), formatEng(decay, 2),
                    std::to_string(isl.numRounds),
                    std::to_string(isl.numHubs()),
                    std::to_string(isl.islands.size()),
                    formatEng(100 * r.aggPruningRate(), 3),
                    formatEng(100.0 * isl.stats.edgesScannedWasted /
                                  std::max<uint64_t>(
                                      1, isl.stats.edgesScanned), 3),
                });
            }
        }
        std::printf("%s\n", ltab.toString().c_str());

        // --- hardware sweeps ----------------------------------------
        std::printf("[hardware: P2 engines, PEs, ring reduction]\n");
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, b.data.info);
        TextTable htab({"config", "latency us", "utilization"});
        for (int p2 : {16, 64, 256}) {
            HwConfig hw;
            hw.locator.p2 = p2;
            RunResult r = simulateIgcn(b.data, mc, hw, &b.islands);
            htab.addRow({"P2=" + std::to_string(p2),
                         formatEng(r.latencyUs, 4),
                         formatEng(r.utilization, 3)});
        }
        for (int pes : {4, 16, 64}) {
            HwConfig hw;
            hw.numPes = pes;
            RunResult r = simulateIgcn(b.data, mc, hw, &b.islands);
            htab.addRow({"PEs=" + std::to_string(pes),
                         formatEng(r.latencyUs, 4),
                         formatEng(r.utilization, 3)});
        }
        for (bool ring : {true, false}) {
            HwConfig hw;
            hw.ringReduction = ring;
            RunResult r = simulateIgcn(b.data, mc, hw, &b.islands);
            htab.addRow({std::string("ring-reduction=") +
                             (ring ? "on" : "off"),
                         formatEng(r.latencyUs, 4),
                         formatEng(r.utilization, 3)});
        }
        std::printf("%s\n", htab.toString().c_str());
    }
    return 0;
}
