/**
 * @file
 * Figure 12 reproduction: latency of I-GCN vs AWB-GCN preceded by
 * lightweight graph reordering.
 *
 * For each dataset and each of the six reordering algorithms we
 * measure the host wall-clock of the reordering pass (the paper runs
 * them on a Xeon Gold 6226R; we run on this host), simulate AWB-GCN
 * on the reordered graph, and compare against I-GCN's end-to-end
 * latency with *runtime* islandization. The paper's finding: the
 * reordering latency alone exceeds I-GCN's entire inference by >100x
 * on the small graphs.
 */

#include "bench_common.hpp"

#include "accel/awbgcn_model.hpp"
#include "accel/report.hpp"
#include "gcn/models.hpp"
#include "reorder/reorder.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 12",
           "I-GCN vs AWB-GCN + lightweight reordering (latency, us)");

    HwConfig hw;
    for (Dataset d : kAllDatasets) {
        const DatasetBundle &b = bundleFor(d);
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, b.data.info);

        RunResult igcn_result =
            simulateIgcn(b.data, mc, hw, &b.islands);

        std::printf("--- %s (N=%u, nnz=%llu) ---\n",
                    b.data.info.name.c_str(), b.data.numNodes(),
                    static_cast<unsigned long long>(
                        b.data.numEdges()));
        TextTable table({"Scheme", "Reorder (us)", "AWB-GCN inf (us)",
                         "Total (us)", "vs I-GCN"});
        table.addRow({"I-GCN (runtime islandization)", "0",
                      formatEng(igcn_result.latencyUs, 4),
                      formatEng(igcn_result.latencyUs, 4), "1.0x"});

        for (ReorderAlgo algo : kAllReorderAlgos) {
            ReorderResult rr = reorderGraph(b.data.graph, algo);
            DatasetGraph reordered = b.data;
            reordered.graph = b.data.graph.permuted(rr.perm);
            RunResult awb = simulateAwbGcn(reordered, mc, hw);
            double total = rr.reorderTimeUs + awb.latencyUs;
            table.addRow({
                reorderAlgoName(algo),
                formatEng(rr.reorderTimeUs, 4),
                formatEng(awb.latencyUs, 4),
                formatEng(total, 4),
                formatEng(total / igcn_result.latencyUs, 3) + "x",
            });
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("Paper finding: reordering latency alone exceeds "
                "I-GCN end-to-end inference (>100x on Cora/Citeseer/"
                "Pubmed); runtime islandization removes the "
                "preprocessing from the critical path entirely.\n");
    return 0;
}
