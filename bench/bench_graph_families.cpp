/**
 * @file
 * Robustness across graph families: how does islandization behave on
 * structures it was NOT designed for?
 *
 * The paper's premise is that real-world graphs have component
 * structure. This harness runs the locator on five graph families —
 * planted hub-and-island (the favorable case), Watts-Strogatz small
 * world (clustered, no hubs), Barabasi-Albert (hubs, no clusters),
 * R-MAT (skew, weak clusters) and Erdos-Renyi (nothing) — and
 * reports hub fraction, pruning rate, coverage and I-GCN vs AWB-GCN
 * latency, showing where islandization pays off and where it
 * gracefully degrades into hub-only (L-shape) processing.
 */

#include "bench_common.hpp"

#include "accel/awbgcn_model.hpp"
#include "accel/report.hpp"
#include "core/permute.hpp"
#include "core/redundancy.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Graph families",
           "Islandization robustness across graph structures");

    constexpr NodeId kNodes = 10000;
    struct Family
    {
        std::string name;
        CsrGraph graph;
    };
    std::vector<Family> families;
    {
        HubIslandParams p;
        p.numNodes = kNodes;
        p.intraIslandProb = 0.7;
        p.seed = 1;
        families.push_back({"hub-island (planted)",
                            hubAndIslandGraph(p).graph});
    }
    families.push_back(
        {"watts-strogatz (b=0.05)", wattsStrogatz(kNodes, 4, 0.05, 2)});
    families.push_back(
        {"barabasi-albert (m=4)", barabasiAlbert(kNodes, 4, 3)});
    families.push_back(
        {"rmat (0.57/0.19/0.19)", rmat(kNodes, kNodes * 8, 0.57, 0.19,
                                       0.19, 4)});
    families.push_back({"erdos-renyi (d=8)",
                        erdosRenyi(kNodes, 8.0, 5)});

    HwConfig hw;
    TextTable table({"family", "avg deg", "hubs%", "islands",
                     "agg prune%", "outliers", "I-GCN us", "AWB us",
                     "speedup"});
    for (const Family &f : families) {
        auto isl = islandize(f.graph);
        PruningReport pruning = countPruning(f.graph, isl, {});
        ClusterCoverage cov = classifyCoverage(f.graph, isl);

        DatasetGraph data;
        data.info = {f.name, "GF", kNodes, f.graph.numEdges(), 128, 8,
                     0.2, 1.0};
        data.graph = f.graph;
        data.featureNnz = static_cast<EdgeId>(kNodes * 128 * 0.2);
        ModelConfig mc;
        mc.name = "GCN";
        mc.layers = {{128, 16}, {16, 8}};
        RunResult ig = simulateIgcn(data, mc, hw, &isl);
        RunResult awb = simulateAwbGcn(data, mc, hw);

        table.addRow({
            f.name,
            formatEng(f.graph.avgDegree(), 3),
            formatEng(100.0 * isl.numHubs() / kNodes, 3),
            std::to_string(isl.islands.size()),
            formatEng(100.0 * pruning.aggPruningRate(), 3),
            std::to_string(cov.outliers),
            formatEng(ig.latencyUs, 4),
            formatEng(awb.latencyUs, 4),
            formatEng(awb.latencyUs / ig.latencyUs, 3) + "x",
        });
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Coverage is exact (0 outliers) on every family — the "
                "algorithm never produces wrong structure; pruning and "
                "speedup track how much community structure exists to "
                "exploit, peaking on the planted case and degrading "
                "gracefully toward hub-only processing on ER.\n");
    return 0;
}
