/**
 * @file
 * Figure 14(B) reproduction: end-to-end inference speedup of I-GCN
 * over CPUs (PyG/DGL), GPUs (PyG/DGL), SIGMA, HyGCN and AWB-GCN, for
 * every model configuration the paper evaluates (GCN/GraphSage in
 * algo and Hy configurations, GIN).
 *
 * Paper headline: speedups of 9568x (PyG-CPU), 1243x (DGL-CPU), 368x
 * (PyG-GPUs), 453x (DGL-V100), 16x (SIGMA), 5.7x (GNN accelerators).
 */

#include "bench_common.hpp"

#include <cmath>

#include "accel/awbgcn_model.hpp"
#include "accel/hygcn_model.hpp"
#include "accel/platform_models.hpp"
#include "accel/report.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 14(B)",
           "Cross-platform end-to-end speedup (I-GCN = 1.0)");

    HwConfig hw;

    struct GeoMean
    {
        double log_sum = 0.0;
        int n = 0;
        void add(double v) { log_sum += std::log(v); n++; }
        double value() const { return n ? std::exp(log_sum / n) : 0; }
    };
    GeoMean pyg_cpu, dgl_cpu, pyg_gpu, dgl_gpu, sigma, accel;

    for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
        std::printf("--- GCN-%s (speedup of I-GCN over each "
                    "platform) ---\n",
                    net == NetConfig::Algo ? "algo" : "Hy");
        TextTable table({"Dataset", "I-GCN us", "PyG-CPU", "DGL-CPU",
                         "PyG-V100", "PyG-RTX8000", "DGL-V100",
                         "SIGMA", "HyGCN", "AWB-GCN"});
        for (Dataset d : kAllDatasets) {
            const DatasetBundle &b = bundleFor(d);
            ModelConfig mc = modelConfig(Model::GCN, net, b.data.info);

            RunResult ig = simulateIgcn(b.data, mc, hw, &b.islands);
            auto s = [&](const RunResult &r) {
                return r.latencyUs / ig.latencyUs;
            };
            RunResult r_pyg_cpu =
                simulateCpu(b.data, mc, Framework::PyG);
            RunResult r_dgl_cpu =
                simulateCpu(b.data, mc, Framework::DGL,
                            e52683Config());
            RunResult r_pyg_v100 =
                simulateGpu(b.data, mc, Framework::PyG);
            RunResult r_pyg_rtx =
                simulateGpu(b.data, mc, Framework::PyG,
                            rtx8000Config());
            RunResult r_dgl_v100 =
                simulateGpu(b.data, mc, Framework::DGL);
            RunResult r_sigma = simulateSigma(b.data, mc);
            RunResult r_hy = simulateHyGcn(b.data, mc);
            RunResult r_awb = simulateAwbGcn(b.data, mc, hw);

            pyg_cpu.add(s(r_pyg_cpu));
            dgl_cpu.add(s(r_dgl_cpu));
            pyg_gpu.add(s(r_pyg_v100));
            pyg_gpu.add(s(r_pyg_rtx));
            dgl_gpu.add(s(r_dgl_v100));
            sigma.add(s(r_sigma));
            accel.add(s(r_hy));
            accel.add(s(r_awb));

            table.addRow({
                b.data.info.name,
                formatEng(ig.latencyUs, 4),
                formatEng(s(r_pyg_cpu), 3) + "x",
                formatEng(s(r_dgl_cpu), 3) + "x",
                formatEng(s(r_pyg_v100), 3) + "x",
                formatEng(s(r_pyg_rtx), 3) + "x",
                formatEng(s(r_dgl_v100), 3) + "x",
                formatEng(s(r_sigma), 3) + "x",
                formatEng(s(r_hy), 3) + "x",
                formatEng(s(r_awb), 3) + "x",
            });
        }
        std::printf("%s\n", table.toString().c_str());
    }

    // GraphSage / GIN over the accelerator baselines.
    std::printf("--- GraphSage and GIN (I-GCN vs AWB-GCN) ---\n");
    TextTable extra({"Model", "Dataset", "I-GCN us", "AWB-GCN us",
                     "Speedup"});
    for (Model m : {Model::GraphSage, Model::GIN}) {
        for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
            if (m == Model::GIN && net == NetConfig::Hy)
                continue; // GIN uses one configuration (HyGCN's own)
            for (Dataset d : {Dataset::Cora, Dataset::Pubmed,
                              Dataset::Reddit}) {
                const DatasetBundle &b = bundleFor(d);
                ModelConfig mc = modelConfig(m, net, b.data.info);
                RunResult ig =
                    simulateIgcn(b.data, mc, hw, &b.islands);
                RunResult awb = simulateAwbGcn(b.data, mc, hw);
                extra.addRow({mc.name, b.data.info.name,
                              formatEng(ig.latencyUs, 4),
                              formatEng(awb.latencyUs, 4),
                              formatEng(awb.latencyUs / ig.latencyUs,
                                        3) + "x"});
            }
        }
    }
    std::printf("%s\n", extra.toString().c_str());

    std::printf("Geometric-mean speedups (paper values in parens):\n");
    std::printf("  over PyG-CPU : %8.0fx  (9568x)\n", pyg_cpu.value());
    std::printf("  over DGL-CPU : %8.0fx  (1243x)\n", dgl_cpu.value());
    std::printf("  over PyG-GPU : %8.1fx  (368x)\n", pyg_gpu.value());
    std::printf("  over DGL-GPU : %8.1fx  (453x)\n", dgl_gpu.value());
    std::printf("  over SIGMA   : %8.1fx  (16x)\n", sigma.value());
    std::printf("  over GNN accelerators (HyGCN+AWB-GCN): %.1fx "
                "(5.7x)\n", accel.value());
    return 0;
}
