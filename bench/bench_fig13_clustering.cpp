/**
 * @file
 * Figure 13 reproduction: non-zero clustering effect of islandization
 * vs the six lightweight reordering algorithms.
 *
 * The paper shows adjacency plots: islandization pushes every
 * non-zero into L-shapes + the anti-diagonal, while the reorderings
 * leave many outliers needing special handling. We quantify with the
 * clustering metrics (diagonal-band fraction, normalized spread,
 * dense-cell concentration, structural outliers) and render density
 * plots for Cora.
 */

#include "bench_common.hpp"

#include <numeric>

#include "accel/report.hpp"
#include "core/permute.hpp"
#include "graph/io.hpp"
#include "reorder/metrics.hpp"
#include "reorder/reorder.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 13",
           "Non-zero clustering: islandization vs reordering");

    for (Dataset d : {Dataset::Cora, Dataset::Pubmed, Dataset::Nell}) {
        const DatasetBundle &b = bundleFor(d);
        std::printf("--- %s ---\n", b.data.info.name.c_str());
        TextTable table({"Scheme", "Band@5%", "NormSpread",
                         "NNZ in top-5% cells", "Structural outliers"});

        auto add_row = [&](const std::string &name,
                           const std::vector<NodeId> &perm,
                           const std::string &outliers) {
            ClusteringMetrics m = clusteringMetrics(b.data.graph, perm);
            table.addRow({name, formatEng(m.bandFraction, 3),
                          formatEng(m.normalizedSpread, 3),
                          formatEng(m.nnzInDenseCells, 3), outliers});
        };

        std::vector<NodeId> identity(b.data.numNodes());
        std::iota(identity.begin(), identity.end(), 0);
        add_row("original order", identity, "-");

        ClusterCoverage cov = classifyCoverage(b.data.graph, b.islands);
        add_row("I-GCN islandization",
                islandizationOrder(b.islands),
                formatEng(100.0 * cov.outliers /
                              std::max<EdgeId>(1, cov.total), 3) + "%");

        for (ReorderAlgo algo : kAllReorderAlgos) {
            ReorderResult rr = reorderGraph(b.data.graph, algo);
            add_row(reorderAlgoName(algo), rr.perm, "n/a (no island"
                    " structure)");
        }
        std::printf("%s\n", table.toString().c_str());
    }

    // Density plots: islandization vs the best lightweight order.
    const DatasetBundle &cora = bundleFor(Dataset::Cora);
    constexpr int kGrid = 48;
    auto isl_grid = renderDensityGrid(
        cora.data.graph, islandizationOrder(cora.islands), kGrid);
    auto rabbit = reorderGraph(cora.data.graph, ReorderAlgo::Rabbit);
    auto rabbit_grid =
        renderDensityGrid(cora.data.graph, rabbit.perm, kGrid);
    std::printf("Cora, I-GCN islandization order:\n%s\n",
                asciiDensityPlot(isl_grid, kGrid).c_str());
    std::printf("Cora, rabbit order (best lightweight baseline):\n%s\n",
                asciiDensityPlot(rabbit_grid, kGrid).c_str());
    savePgm(isl_grid, kGrid, kGrid, "fig13_cora_islandization.pgm");
    savePgm(rabbit_grid, kGrid, kGrid, "fig13_cora_rabbit.pgm");
    std::printf("Wrote fig13_cora_islandization.pgm / "
                "fig13_cora_rabbit.pgm\n\n");
    std::printf("Paper finding: islandization leaves zero outlying "
                "non-zeros (structural guarantee); every lightweight "
                "reordering leaves scattered non-zeros that need "
                "special handling.\n");
    return 0;
}
