/**
 * @file
 * Table 1 reproduction, quantified: PULL vs PUSH vs Islandization.
 *
 * The paper's Table 1 is qualitative (on-chip storage, off-chip
 * access, reuse of XW/A/Xo, load imbalance, redundancy removal).
 * We regenerate it with measured values from the SpMM dataflow
 * kernels and the islandization working-set analysis on Cora.
 */

#include "bench_common.hpp"

#include <algorithm>

#include "accel/report.hpp"
#include "core/redundancy.hpp"
#include "spmm/spmm.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Table 1", "PULL vs PUSH vs Islandization, measured");

    const DatasetBundle &b = bundleFor(Dataset::Cora);
    const CsrGraph &g = b.data.graph;
    CsrMatrix a = CsrMatrix::fromGraph(g);
    const int channels = 16;
    Rng rng(3);
    DenseMatrix xw(g.numNodes(), channels);
    xw.fillRandom(rng);

    SpmmCounters pull, push;
    spmmPullRowWise(a, xw, &pull);
    spmmPushOuterProduct(a, xw, &push);

    // Load imbalance proxy: max-degree / average-degree row work.
    const double imbalance =
        g.maxDegree() / std::max(1.0, g.avgDegree());

    // Islandization: working set per task and irregular accesses.
    uint64_t max_ws_rows = 0;
    for (const Island &island : b.islands.islands) {
        max_ws_rows = std::max<uint64_t>(
            max_ws_rows, island.nodes.size() + island.hubs.size());
    }
    RedundancyConfig rcfg;
    PruningReport report = countPruning(g, b.islands, rcfg);

    TextTable table({"Property", "PULL (row-wise)",
                     "PUSH (outer-product)", "Islandization"});
    table.addRow({"on-chip partial-result rows",
                  "1 row (streamed)",
                  std::to_string(g.numNodes()) + " rows (all)",
                  std::to_string(max_ws_rows) + " rows (max island)"});
    table.addRow({"irregular XW element reads",
                  std::to_string(pull.bIrregularReads),
                  "0 (broadcast)",
                  "0 (island rows staged once)"});
    table.addRow({"irregular Xo element writes",
                  "0 (row order)",
                  std::to_string(push.cIrregularWrites),
                  std::to_string(2 * b.islands.interHubEdges.size() *
                                 channels) +
                      " (inter-hub only)"});
    table.addRow({"reuse of A",
                  "full (streamed once)",
                  "full (streamed once)",
                  "full (bitmap per island)"});
    table.addRow({"load imbalance (max/avg row work)",
                  formatEng(imbalance, 3),
                  formatEng(imbalance, 3),
                  "~1 (cmax-bounded island tasks)"});
    table.addRow({"redundancy removal",
                  "hard (rows scattered)",
                  "hard (columns scattered)",
                  formatEng(100.0 * report.aggPruningRate(), 3) +
                      "% of agg ops pruned"});
    std::printf("%s\n", table.toString().c_str());

    std::printf("Paper Table 1: PULL has low on-chip storage but high "
                "off-chip access and no XW reuse; PUSH reuses XW but "
                "needs the whole result matrix on chip and is "
                "imbalanced; islandization achieves low storage, low "
                "off-chip access, full reuse of all three matrices, "
                "no imbalance, and easy redundancy removal.\n");
    return 0;
}
