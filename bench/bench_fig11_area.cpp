/**
 * @file
 * Figure 11 reproduction: hardware consumption breakdown of I-GCN
 * with 4K MACs and 64 TP-BFS engines, ALM-normalized.
 * Paper: Island Locator 34% of the accelerator, Consumer 66%.
 */

#include "bench_common.hpp"

#include "accel/area.hpp"
#include "accel/report.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 11",
           "Hardware consumption breakdown (ALM-normalized)");

    HwConfig hw; // 4K MACs, 64 TP-BFS engines (the paper's config)
    AreaBreakdown bd = areaBreakdown(hw);

    TextTable table({"Component", "Group", "kALMs", "Share%"});
    for (const AreaEntry &e : bd.entries) {
        table.addRow({e.component, e.group,
                      formatEng(e.alms / 1000.0, 4),
                      formatEng(100.0 * e.alms / bd.totalAlms(), 3)});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("Total: %.0f kALMs\n", bd.totalAlms() / 1000.0);
    std::printf("Island Locator : %.1f%% (paper: 34%%)\n",
                100.0 * bd.groupShare("Locator"));
    std::printf("Island Consumer: %.1f%% (paper: 66%%)\n",
                100.0 * bd.groupShare("Consumer"));

    // Scaling study: how the split moves with the design knobs.
    std::printf("\nScaling with configuration:\n");
    TextTable scale({"MACs", "TP-BFS engines", "Locator%",
                     "Consumer%"});
    for (int macs : {2048, 4096, 8192}) {
        for (int engines : {32, 64, 128}) {
            HwConfig cfg;
            cfg.numMacs = macs;
            cfg.locator.p2 = engines;
            AreaBreakdown sbd = areaBreakdown(cfg);
            scale.addRow({std::to_string(macs),
                          std::to_string(engines),
                          formatEng(100 * sbd.groupShare("Locator"), 3),
                          formatEng(100 * sbd.groupShare("Consumer"),
                                    3)});
        }
    }
    std::printf("%s", scale.toString().c_str());
    return 0;
}
