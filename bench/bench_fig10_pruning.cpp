/**
 * @file
 * Figure 10 reproduction: operation pruning rates with shared-
 * neighbor redundancy removal.
 *
 * Left series: fraction of aggregation operations skipped per
 * dataset (paper: 39/40/35/46/29%, average 38%). Right series:
 * fraction of *all* operations pruned given combination-first op
 * accounting (paper: 9/5/4/5/17%, average ~9%; aggregation is ~23%
 * of total ops).
 */

#include "bench_common.hpp"

#include "accel/report.hpp"
#include "accel/workload.hpp"
#include "core/redundancy.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 10", "Pruning rates with redundancy removal");

    const double paper_agg[] = {0.39, 0.40, 0.35, 0.46, 0.29};
    const double paper_overall[] = {0.09, 0.05, 0.04, 0.05, 0.17};

    TextTable table({"Dataset", "AggPrune% (paper)", "AggPrune% (ours)",
                     "OverallPrune% (paper)", "OverallPrune% (ours)",
                     "AggShareOfOps%"});

    double agg_sum = 0.0, overall_sum = 0.0, share_sum = 0.0;
    int idx = 0;
    for (Dataset d : kAllDatasets) {
        const DatasetBundle &b = bundleFor(d);
        RedundancyConfig cfg; // adaptive-k, hardware-charged preagg
        PruningReport report =
            countPruning(b.data.graph, b.islands, cfg);

        // Overall pruning uses the GCN-algo workload accounting; the
        // pre-aggregation sums are charged to the combination phase
        // where the pipelined hardware computes them (Section 3.3.1),
        // matching the paper's definition of "aggregation operations".
        ModelConfig mc =
            modelConfig(Model::GCN, NetConfig::Algo, b.data.info);
        Workload wl = buildWorkload(b.data, mc);
        uint64_t comb_ops = 0;
        uint64_t agg_channels = 0;
        for (const LayerWork &l : wl.layers) {
            comb_ops += l.combinationMacs;
            agg_channels += l.outChannels;
        }
        // Aggregation pruning excludes the preagg overhead (charged
        // to combination, like the hardware pipelines it).
        const double agg_prune = 1.0 -
            static_cast<double>(report.optimizedAggOps() -
                                report.islandOps.preaggOps) /
                report.baselineAggOps();
        const double overall =
            report.overallPruningRate(comb_ops, agg_channels);
        const double agg_share =
            static_cast<double>(report.baselineAggOps()) *
            agg_channels /
            (static_cast<double>(comb_ops) +
             static_cast<double>(report.baselineAggOps()) *
                 agg_channels);

        agg_sum += agg_prune;
        overall_sum += overall;
        share_sum += agg_share;
        table.addRow({
            b.data.info.name,
            formatEng(paper_agg[idx] * 100, 3),
            formatEng(agg_prune * 100, 3),
            formatEng(paper_overall[idx] * 100, 3),
            formatEng(overall * 100, 3),
            formatEng(agg_share * 100, 3),
        });
        idx++;
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Averages: aggregation pruning %.1f%% "
                "(paper: 38%%), overall pruning %.1f%% (paper: ~9%%), "
                "aggregation op share %.1f%% (paper: ~23%%)\n",
                agg_sum / 5 * 100, overall_sum / 5 * 100,
                share_sum / 5 * 100);
    std::printf("Removal is lossless: the consumer tests verify "
                "numeric equality with the reference forward pass.\n");
    return 0;
}
