/**
 * @file
 * Parallel-scaling sweep of the island-aware execution engine.
 *
 * Runs every pooled kernel — island aggregation, the four SpMM
 * dataflows, the transpose scatter, the island locator and dense
 * GEMM — plus the end-to-end two-layer forward pass on the synthetic
 * hub-and-island dataset family, sweeping the thread-pool worker
 * count 1..N. Prints a speedup table and writes machine-readable
 * results to BENCH_parallel.json.
 *
 * Usage: bench_parallel_scaling [--max-threads=N] [--quick]
 *   --max-threads=N  cap the sweep (default: max(4, hardware))
 *   --quick          smallest dataset only, one reptition per point
 *                    (the CI smoke configuration)
 */

#include "bench_common.hpp"

#include <chrono>
#include <cstring>
#include <vector>

#include "core/consumer.hpp"
#include "gcn/reference.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

using namespace igcn;
using namespace igcn::bench;

namespace {

constexpr int kChannels = 64;

struct ScalingCase
{
    std::string name;
    CsrGraph graph;
    IslandizationResult islands;
};

ScalingCase
makeCase(const char *name, NodeId nodes, uint64_t seed)
{
    HubIslandParams p;
    p.numNodes = nodes;
    p.seed = seed;
    ScalingCase c;
    c.name = name;
    c.graph = hubAndIslandGraph(p).graph;
    c.islands = islandize(c.graph);
    return c;
}

/** Best-of-reps wall time of fn(), in seconds. */
template <typename Fn>
double
timeBest(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        best = std::min(best, s);
    }
    return best;
}

struct KernelResult
{
    std::string kernel;
    std::vector<int> threads;
    std::vector<double> seconds;
};

} // namespace

int
main(int argc, char **argv)
{
    int max_threads = 0;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--max-threads=", 14) == 0)
            max_threads = std::atoi(argv[i] + 14);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const int hw = static_cast<int>(
        std::thread::hardware_concurrency());
    if (max_threads < 1)
        max_threads = std::max(4, hw);
    const int reps = quick ? 1 : 3;

    banner("Parallel scaling",
           "Thread-pool sweep of the island-aware execution engine");
    std::printf("hardware_concurrency=%d, sweep 1..%d threads, "
                "best of %d rep(s)\n\n", hw, max_threads, reps);

    std::vector<int> thread_counts;
    for (int t = 1; t <= max_threads; t *= 2)
        thread_counts.push_back(t);
    if (thread_counts.back() != max_threads)
        thread_counts.push_back(max_threads);

    std::vector<ScalingCase> cases;
    cases.push_back(makeCase("hub-island-small", 4000, 11));
    if (!quick) {
        cases.push_back(makeCase("hub-island-medium", 20000, 12));
        cases.push_back(makeCase("hub-island-large", 60000, 13));
    }

    JsonWriter json;
    json.beginObject();
    json.key("bench").value("parallel_scaling");
    json.key("hardware_concurrency").value(hw);
    json.key("channels").value(kChannels);
    json.key("reps").value(reps);
    json.key("quick").value(quick);
    json.key("datasets").beginArray();

    for (const ScalingCase &c : cases) {
        const NodeId n = c.graph.numNodes();
        Rng rng(101);
        DenseMatrix y(n, kChannels);
        y.fillRandom(rng);
        CsrMatrix a = CsrMatrix::fromGraph(c.graph);
        DenseMatrix w1(kChannels, kChannels), w2(kChannels, 16);
        w1.fillRandom(rng, 0.5f);
        w2.fillRandom(rng, 0.5f);
        Features x;
        x.dense = y;
        const std::vector<DenseMatrix> weights{w1, w2};
        const RedundancyConfig cfg;

        std::printf("--- %s: %u nodes, %llu edges, %zu islands, "
                    "%u hubs ---\n", c.name.c_str(), n,
                    static_cast<unsigned long long>(c.graph.numEdges()),
                    c.islands.islands.size(), c.islands.numHubs());

        // Memory high-water mark around the sweep: the gather
        // kernels write output rows directly, so — unlike the old
        // per-worker speculation buffers (up to 8 x N x C floats) —
        // the sweep's peak should track a single output matrix plus
        // the cached CSC adjunct.
        const uint64_t rss_before_kb = peakRssKb();

        std::vector<KernelResult> results;
        results.push_back({"aggregateViaIslands", {}, {}});
        results.push_back({"spmmPullRowWise", {}, {}});
        results.push_back({"spmmPullInnerProduct", {}, {}});
        results.push_back({"spmmPushColumnWise", {}, {}});
        results.push_back({"spmmPushOuterProduct", {}, {}});
        results.push_back({"csrTransposeTimesDense", {}, {}});
        results.push_back({"islandize", {}, {}});
        results.push_back({"gemm", {}, {}});
        results.push_back({"gcnForwardViaIslands", {}, {}});

        for (int t : thread_counts) {
            setGlobalThreads(t);
            const double agg = timeBest(reps, [&] {
                aggregateViaIslands(c.graph, c.islands, y, cfg);
            });
            const double spmm = timeBest(reps, [&] {
                spmmPullRowWise(a, y, nullptr);
            });
            const double spmm_ip = timeBest(reps, [&] {
                spmmPullInnerProduct(a, y, nullptr);
            });
            const double spmm_cw = timeBest(reps, [&] {
                spmmPushColumnWise(a, y, nullptr);
            });
            const double spmm_op = timeBest(reps, [&] {
                spmmPushOuterProduct(a, y, nullptr);
            });
            const double xt = timeBest(reps, [&] {
                csrTransposeTimesDense(a, y);
            });
            const double loc = timeBest(reps, [&] {
                islandize(c.graph);
            });
            const double mm = timeBest(reps, [&] {
                gemm(y, w1);
            });
            const double fwd = timeBest(reps, [&] {
                gcnForwardViaIslands(c.graph, c.islands, x, weights,
                                     cfg);
            });
            const double secs[] = {agg, spmm, spmm_ip, spmm_cw,
                                   spmm_op, xt, loc, mm, fwd};
            for (size_t k = 0; k < results.size(); ++k) {
                results[k].threads.push_back(t);
                results[k].seconds.push_back(secs[k]);
            }
        }
        setGlobalThreads(0);
        const uint64_t rss_after_kb = peakRssKb();

        json.beginObject();
        json.key("name").value(c.name);
        json.key("nodes").value(static_cast<uint64_t>(n));
        json.key("edges").value(
            static_cast<uint64_t>(c.graph.numEdges()));
        json.key("islands").value(
            static_cast<uint64_t>(c.islands.islands.size()));
        json.key("hubs").value(
            static_cast<uint64_t>(c.islands.numHubs()));
        json.key("peak_rss_kb_before").value(rss_before_kb);
        json.key("peak_rss_kb_after").value(rss_after_kb);
        json.key("kernels").beginArray();

        std::printf("%-22s", "kernel");
        for (int t : thread_counts)
            std::printf("  %7dT", t);
        std::printf("  speedup@max\n");
        for (const KernelResult &kr : results) {
            json.beginObject();
            json.key("kernel").value(kr.kernel);
            json.key("results").beginArray();
            std::printf("%-22s", kr.kernel.c_str());
            const double base = kr.seconds.front();
            for (size_t i = 0; i < kr.threads.size(); ++i) {
                std::printf("  %7.2fms", kr.seconds[i] * 1e3);
                json.beginObject();
                json.key("threads").value(kr.threads[i]);
                json.key("seconds").value(kr.seconds[i]);
                json.key("speedup").value(
                    kr.seconds[i] > 0.0 ? base / kr.seconds[i] : 0.0);
                json.endObject();
            }
            std::printf("  %8.2fx\n",
                        kr.seconds.back() > 0.0
                            ? base / kr.seconds.back() : 0.0);
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::printf("peak RSS: %.1f MB before sweep, %.1f MB after "
                    "(delta %.1f MB)\n\n",
                    rss_before_kb / 1024.0, rss_after_kb / 1024.0,
                    (rss_after_kb - rss_before_kb) / 1024.0);
    }

    json.endArray();
    json.endObject();

    const char *out_path = "BENCH_parallel.json";
    if (json.writeFile(out_path))
        std::printf("Wrote %s\n", out_path);
    else
        std::printf("WARNING: could not write %s\n", out_path);

    std::printf("\nNote: speedups are bounded by the machine's "
                "physical core count (%d detected); the parity "
                "guarantees are checked by tests/test_runtime.cpp at "
                "any thread count.\n", hw);
    return 0;
}
