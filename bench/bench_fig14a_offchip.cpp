/**
 * @file
 * Figure 14(A) reproduction: normalized off-chip data access of
 * I-GCN vs AWB-GCN, HyGCN and PyG-CPU, for GCN-algo and GCN-Hy.
 *
 * Following the paper's counting convention, the adjacency and input
 * feature matrices are assumed to start off-chip; I-GCN's property is
 * that island data is fetched (nearly) once, while the baselines
 * re-fetch features/partials many times. Values are normalized to
 * I-GCN = 1.
 */

#include "bench_common.hpp"

#include "accel/awbgcn_model.hpp"
#include "accel/hygcn_model.hpp"
#include "accel/platform_models.hpp"
#include "accel/report.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 14(A)",
           "Normalized off-chip data accesses (I-GCN = 1.0)");

    HwConfig hw;
    for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
        std::printf("--- GCN-%s ---\n",
                    net == NetConfig::Algo ? "algo" : "Hy");
        TextTable table({"Dataset", "I-GCN (bytes)", "I-GCN", "AWB-GCN",
                         "HyGCN", "PyG-CPU"});
        for (Dataset d : kAllDatasets) {
            const DatasetBundle &b = bundleFor(d);
            ModelConfig mc = modelConfig(Model::GCN, net, b.data.info);
            RunResult ig = simulateIgcn(b.data, mc, hw, &b.islands);
            RunResult awb = simulateAwbGcn(b.data, mc, hw);
            RunResult hy = simulateHyGcn(b.data, mc);
            RunResult cpu = simulateCpu(b.data, mc, Framework::PyG);
            table.addRow({
                b.data.info.name,
                formatEng(ig.offchipBytes, 3),
                "1.00",
                formatEng(awb.offchipBytes / ig.offchipBytes, 3),
                formatEng(hy.offchipBytes / ig.offchipBytes, 3),
                formatEng(cpu.offchipBytes / ig.offchipBytes, 3),
            });
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("Paper shape: I-GCN's off-chip traffic is the lowest "
                "of all platforms on every dataset (most data fetched "
                "exactly once); the gap widens on the large graphs "
                "where the baselines spill partials/features.\n");
    return 0;
}
