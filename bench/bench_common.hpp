/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series the paper reports,
 * alongside the paper's published values where applicable so the
 * shape comparison is immediate.
 *
 * Dataset scaling: Reddit's surrogate defaults to 0.25 scale so the
 * full harness suite runs in minutes (the surrogate is already a
 * scaled stand-in; see DESIGN.md section 2). Set IGCN_FULL_SCALE=1
 * for full-size runs.
 *
 * Threading: the compute kernels run on the shared thread-pool
 * runtime; set IGCN_THREADS to pin the worker count (DESIGN.md
 * section 3 describes the partitioning and determinism guarantees).
 * bench_parallel_scaling sweeps the count explicitly and emits
 * machine-readable results through JsonWriter below.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "accel/igcn_model.hpp"
#include "core/locator.hpp"
#include "graph/datasets.hpp"
#include "obs/json_writer.hpp"

namespace igcn::bench {

/** Scale policy per dataset (Reddit reduced unless IGCN_FULL_SCALE). */
inline double
datasetScale(Dataset d)
{
    const char *full = std::getenv("IGCN_FULL_SCALE");
    if (full && full[0] == '1')
        return 1.0;
    switch (d) {
      case Dataset::Reddit: return 0.25;
      case Dataset::Nell: return 1.0;
      default: return 1.0;
    }
}

/** Per-process cache: dataset builds and islandizations are reused. */
struct DatasetBundle
{
    DatasetGraph data;
    IslandizationResult islands;
};

inline const DatasetBundle &
bundleFor(Dataset d)
{
    static std::map<Dataset, DatasetBundle> cache;
    auto it = cache.find(d);
    if (it == cache.end()) {
        DatasetBundle bundle;
        bundle.data = buildDataset(d, datasetScale(d));
        bundle.islands = islandize(bundle.data.graph, LocatorConfig{});
        it = cache.emplace(d, std::move(bundle)).first;
    }
    return it->second;
}

/**
 * JsonWriter moved to src/obs/json_writer.hpp (the observability
 * exporters share it); this alias keeps the bench spelling.
 */
using JsonWriter = igcn::obs::JsonWriter;

/**
 * Process peak resident set size (memory high-water mark) in KiB, 0
 * where unavailable. Monotonic over the process lifetime, so a
 * before/after pair around a kernel sweep bounds the sweep's
 * allocation high-water mark.
 */
inline uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(ru.ru_maxrss) / 1024; // bytes on mac
#else
    return static_cast<uint64_t>(ru.ru_maxrss); // KiB on Linux
#endif
#else
    return 0;
#endif
}

/** Banner used by every harness. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("I-GCN reproduction — %s\n%s\n", experiment,
                description);
    std::printf("==============================================="
                "=================\n\n");
}

} // namespace igcn::bench
