/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series the paper reports,
 * alongside the paper's published values where applicable so the
 * shape comparison is immediate.
 *
 * Dataset scaling: Reddit's surrogate defaults to 0.25 scale so the
 * full harness suite runs in minutes (the surrogate is already a
 * scaled stand-in; see DESIGN.md section 2). Set IGCN_FULL_SCALE=1
 * for full-size runs.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "accel/igcn_model.hpp"
#include "core/locator.hpp"
#include "graph/datasets.hpp"

namespace igcn::bench {

/** Scale policy per dataset (Reddit reduced unless IGCN_FULL_SCALE). */
inline double
datasetScale(Dataset d)
{
    const char *full = std::getenv("IGCN_FULL_SCALE");
    if (full && full[0] == '1')
        return 1.0;
    switch (d) {
      case Dataset::Reddit: return 0.25;
      case Dataset::Nell: return 1.0;
      default: return 1.0;
    }
}

/** Per-process cache: dataset builds and islandizations are reused. */
struct DatasetBundle
{
    DatasetGraph data;
    IslandizationResult islands;
};

inline const DatasetBundle &
bundleFor(Dataset d)
{
    static std::map<Dataset, DatasetBundle> cache;
    auto it = cache.find(d);
    if (it == cache.end()) {
        DatasetBundle bundle;
        bundle.data = buildDataset(d, datasetScale(d));
        bundle.islands = islandize(bundle.data.graph, LocatorConfig{});
        it = cache.emplace(d, std::move(bundle)).first;
    }
    return it->second;
}

/** Banner used by every harness. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("I-GCN reproduction — %s\n%s\n", experiment,
                description);
    std::printf("==============================================="
                "=================\n\n");
}

} // namespace igcn::bench
