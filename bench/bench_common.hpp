/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series the paper reports,
 * alongside the paper's published values where applicable so the
 * shape comparison is immediate.
 *
 * Dataset scaling: Reddit's surrogate defaults to 0.25 scale so the
 * full harness suite runs in minutes (the surrogate is already a
 * scaled stand-in; see DESIGN.md section 2). Set IGCN_FULL_SCALE=1
 * for full-size runs.
 *
 * Threading: the compute kernels run on the shared thread-pool
 * runtime; set IGCN_THREADS to pin the worker count (DESIGN.md
 * section 3 describes the partitioning and determinism guarantees).
 * bench_parallel_scaling sweeps the count explicitly and emits
 * machine-readable results through JsonWriter below.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "accel/igcn_model.hpp"
#include "core/locator.hpp"
#include "graph/datasets.hpp"

namespace igcn::bench {

/** Scale policy per dataset (Reddit reduced unless IGCN_FULL_SCALE). */
inline double
datasetScale(Dataset d)
{
    const char *full = std::getenv("IGCN_FULL_SCALE");
    if (full && full[0] == '1')
        return 1.0;
    switch (d) {
      case Dataset::Reddit: return 0.25;
      case Dataset::Nell: return 1.0;
      default: return 1.0;
    }
}

/** Per-process cache: dataset builds and islandizations are reused. */
struct DatasetBundle
{
    DatasetGraph data;
    IslandizationResult islands;
};

inline const DatasetBundle &
bundleFor(Dataset d)
{
    static std::map<Dataset, DatasetBundle> cache;
    auto it = cache.find(d);
    if (it == cache.end()) {
        DatasetBundle bundle;
        bundle.data = buildDataset(d, datasetScale(d));
        bundle.islands = islandize(bundle.data.graph, LocatorConfig{});
        it = cache.emplace(d, std::move(bundle)).first;
    }
    return it->second;
}

/**
 * Minimal streaming JSON emitter for machine-readable bench results
 * (BENCH_*.json files). Stack-based begin/end API with automatic
 * comma placement; strings are escaped, doubles printed with enough
 * digits to round-trip. Shared by every bench that emits JSON.
 */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        comma();
        out += '{';
        first = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out += '}';
        first = false;
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        comma();
        out += '[';
        first = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out += ']';
        first = false;
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        comma();
        appendString(k);
        out += ':';
        first = true; // suppress comma before the value
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        comma();
        appendString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        comma();
        // JSON has no inf/nan literal; degenerate measurements (e.g.
        // a zero-time denominator making a speedup ratio inf on a
        // 1-core container) become null so the document always
        // parses.
        if (!std::isfinite(v)) {
            out += "null";
            return *this;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        comma();
        out += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        comma();
        out += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        comma();
        out += v ? "true" : "false";
        return *this;
    }

    const std::string &str() const { return out; }

    /** Write the document to path; returns false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        const size_t n =
            std::fwrite(out.data(), 1, out.size(), f);
        const bool ok = n == out.size() && std::fputc('\n', f) != EOF;
        return std::fclose(f) == 0 && ok;
    }

  private:
    void
    comma()
    {
        if (!first)
            out += ',';
        first = false;
    }

    void
    appendString(const std::string &s)
    {
        out += '"';
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
    }

    std::string out;
    bool first = true;
};

/**
 * Process peak resident set size (memory high-water mark) in KiB, 0
 * where unavailable. Monotonic over the process lifetime, so a
 * before/after pair around a kernel sweep bounds the sweep's
 * allocation high-water mark.
 */
inline uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(ru.ru_maxrss) / 1024; // bytes on mac
#else
    return static_cast<uint64_t>(ru.ru_maxrss); // KiB on Linux
#endif
#else
    return 0;
#endif
}

/** Banner used by every harness. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("I-GCN reproduction — %s\n%s\n", experiment,
                description);
    std::printf("==============================================="
                "=================\n\n");
}

} // namespace igcn::bench
