/**
 * @file
 * Figure 9 reproduction: islandization effect on the adjacency
 * matrices of Cora, Citeseer, PubMed and NELL.
 *
 * The paper shows before/after non-zero plots; here we print ASCII
 * density plots in the original and islandized orders, write PGM
 * images next to the binary, and report the quantitative version of
 * the figure's claim: after islandization 100% of the non-zeros lie
 * in hub L-shapes or island diagonal blocks, within a handful of
 * rounds ("our islandization method is able to optimally cluster all
 * non-zeros ... within several rounds").
 */

#include "bench_common.hpp"

#include <numeric>

#include "accel/report.hpp"
#include "core/permute.hpp"
#include "graph/io.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Figure 9", "Islandization effect on adjacency matrices");

    TextTable table({"Dataset", "Nodes", "NNZ", "Rounds", "Hubs",
                     "Islands", "L-shape NNZ%", "IslandBlock NNZ%",
                     "Outlier NNZ%"});

    for (Dataset d : {Dataset::Cora, Dataset::Citeseer,
                      Dataset::Pubmed, Dataset::Nell}) {
        const DatasetBundle &b = bundleFor(d);
        const auto &isl = b.islands;
        ClusterCoverage cov = classifyCoverage(b.data.graph, isl);
        table.addRow({
            b.data.info.name,
            std::to_string(b.data.numNodes()),
            std::to_string(b.data.numEdges()),
            std::to_string(isl.numRounds),
            std::to_string(isl.numHubs()),
            std::to_string(isl.islands.size()),
            formatEng(100.0 * cov.inHubLShape / cov.total, 4),
            formatEng(100.0 * cov.inIslandBlock / cov.total, 4),
            formatEng(100.0 * cov.outliers / std::max<EdgeId>(
                          1, cov.total), 4),
        });
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper claim: all non-zeros clustered into L-shapes "
                "and the anti-diagonal within several rounds\n"
                "Measured   : outlier fraction is 0%% on every "
                "dataset (coverage is exact by construction).\n\n");

    // Visual detail for Cora: before vs after density plots + PGMs.
    const DatasetBundle &cora = bundleFor(Dataset::Cora);
    std::vector<NodeId> identity(cora.data.numNodes());
    std::iota(identity.begin(), identity.end(), 0);
    auto perm = islandizationOrder(cora.islands);

    constexpr int kGrid = 48;
    auto before = renderDensityGrid(cora.data.graph, identity, kGrid);
    auto after = renderDensityGrid(cora.data.graph, perm, kGrid);
    std::printf("Cora adjacency, original node order (%dx%d cells):\n%s\n",
                kGrid, kGrid,
                asciiDensityPlot(before, kGrid).c_str());
    std::printf("Cora adjacency, islandization order (hub L-shapes "
                "per round + island diagonal):\n%s\n",
                asciiDensityPlot(after, kGrid).c_str());

    savePgm(before, kGrid, kGrid, "fig9_cora_before.pgm");
    savePgm(after, kGrid, kGrid, "fig9_cora_after.pgm");
    std::printf("Wrote fig9_cora_before.pgm / fig9_cora_after.pgm "
                "(256-level density images).\n");
    return 0;
}
