/**
 * @file
 * Sensitivity study: how islandization degrades as community
 * structure weakens.
 *
 * The paper observes that I-GCN's advantage shrinks on Reddit
 * because it "has less significant component structures". This bench
 * sweeps the generator's community strength from clean (1.0) to
 * heavily rewired (0.6) at fixed size/degree and reports hub
 * fraction, pruning rate, locator waste, and the I-GCN vs AWB-GCN
 * speedup — quantifying the paper's qualitative remark.
 */

#include "bench_common.hpp"

#include "accel/awbgcn_model.hpp"
#include "accel/report.hpp"
#include "core/redundancy.hpp"
#include "gcn/models.hpp"

using namespace igcn;
using namespace igcn::bench;

int
main()
{
    banner("Sensitivity",
           "Islandization vs community strength (paper's Reddit "
           "observation, swept)");

    TextTable table({"strength", "hubs%", "islands", "agg prune%",
                     "wasted scans%", "I-GCN us", "AWB us",
                     "speedup"});

    HwConfig hw;
    for (double strength : {1.0, 0.95, 0.9, 0.8, 0.7, 0.6}) {
        HubIslandParams params;
        params.numNodes = 8000;
        params.meanIslandSize = 8;
        params.intraIslandProb = 0.7;
        params.communityStrength = strength;
        params.seed = 1234;
        auto hi = hubAndIslandGraph(params);

        auto isl = islandize(hi.graph);
        PruningReport pruning = countPruning(hi.graph, isl, {});

        DatasetGraph data;
        data.info = {"sweep", "SW", params.numNodes,
                     hi.graph.numEdges(), 256, 8, 0.2, strength};
        data.graph = hi.graph;
        data.featureNnz = static_cast<EdgeId>(
            params.numNodes * 256 * 0.2);
        ModelConfig mc;
        mc.name = "GCN";
        mc.layers = {{256, 16}, {16, 8}};

        RunResult ig = simulateIgcn(data, mc, hw, &isl);
        RunResult awb = simulateAwbGcn(data, mc, hw);

        table.addRow({
            formatEng(strength, 3),
            formatEng(100.0 * isl.numHubs() / params.numNodes, 3),
            std::to_string(isl.islands.size()),
            formatEng(100.0 * pruning.aggPruningRate(), 3),
            formatEng(100.0 * isl.stats.edgesScannedWasted /
                          std::max<uint64_t>(
                              1, isl.stats.edgesScanned), 3),
            formatEng(ig.latencyUs, 4),
            formatEng(awb.latencyUs, 4),
            formatEng(awb.latencyUs / ig.latencyUs, 3) + "x",
        });
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("As rewiring destroys communities, more nodes are "
                "promoted to hubs, pruning opportunity falls, and the "
                "I-GCN advantage narrows — exactly the paper's "
                "explanation for Reddit's smaller speedup.\n");
    return 0;
}
